"""The planner: choose variant and processor grid from the cost model (§5).

The paper's central planning result is that the algorithm flavor and the
``pr × pc`` grid should be *derived* from the per-iteration cost model: pick
``pr : pc ∝ m : n`` to hit the bandwidth lower bound, and fall back to the
1D or naive layouts when the shape makes them cheaper.  This module closes
that loop for arbitrary problems:

* :func:`plan_candidates` enumerates every registered variant that exposes
  an analytic cost hook (:meth:`repro.core.variants.Variant.
  predicted_breakdown`), crossed with each variant's candidate grids (for
  ``hpc2d``, **all** factorizations of ``p``), scores each candidate under
  one :class:`~repro.perf.machine.MachineSpec`, and returns the table
  sorted by predicted per-iteration seconds;
* :func:`make_plan` returns the argmin as an :class:`ExecutionPlan`, which
  ``fit(A, k, variant="auto", grid="auto")`` executes and records in the
  result provenance (``result.plan``) so predicted-vs-measured comparison
  is one attribute access away.

Ties (e.g. every candidate at ``p = 1``) resolve to the earliest variant in
:data:`PLANNER_VARIANT_ORDER` — simplest execution wins when the model
cannot tell candidates apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.comm.profiler import TimeBreakdown
from repro.plan.problem import ProblemSpec

#: Preference order for tie-breaking and table layout; registry variants not
#: listed here are still planned (after these) if they expose a cost hook.
PLANNER_VARIANT_ORDER: Tuple[str, ...] = ("sequential", "hpc2d", "hpc1d", "naive")


@dataclass(frozen=True)
class ExecutionPlan:
    """One scored execution candidate: what to run and what the model expects.

    Attributes
    ----------
    variant:
        Variant registry name (``"hpc2d"``, ``"naive"``, ...).
    n_ranks:
        SPMD rank count ``p`` the plan was scored for.
    grid:
        ``(pr, pc)`` processor grid, or ``None`` for grid-free variants
        (sequential, naive).
    backend, solver:
        Execution backend and local NLS solver recorded for provenance.
    kernel:
        BPP kernel the plan was priced for (``None`` = default pricing, i.e.
        the ``scalar`` engine); see :mod:`repro.nls.kernels`.
    machine:
        Name of the :class:`~repro.perf.machine.MachineSpec` the prediction
        used (``"edison"`` unless calibrated).
    problem:
        The :class:`ProblemSpec` that was costed.
    breakdown:
        Predicted per-iteration :class:`~repro.comm.profiler.TimeBreakdown`
        (the six Figure-3 task categories).
    words_per_iteration:
        Predicted per-iteration communication volume in 8-byte words (the
        quantity Table 2 bounds), or ``None`` when the variant does not
        model it.
    schedule:
        ``"blocking"`` (classic Algorithm 2/3 schedule) or ``"pipelined"``
        (nonblocking collectives overlapping compute; see
        :func:`repro.perf.model.pipelined_breakdown`).  Pipelined plans
        carry the overlapped time in their breakdown's ``HiddenComm``
        category, which :attr:`seconds_per_iteration` excludes.
    """

    variant: str
    n_ranks: int
    grid: Optional[Tuple[int, int]]
    backend: Optional[str]
    solver: str
    machine: str
    problem: ProblemSpec
    breakdown: TimeBreakdown
    words_per_iteration: Optional[float] = None
    kernel: Optional[str] = None
    schedule: str = "blocking"

    @property
    def seconds_per_iteration(self) -> float:
        """Predicted per-iteration seconds (the planner's objective)."""
        return self.breakdown.total

    def summary(self) -> str:
        grid = f"{self.grid[0]}x{self.grid[1]}" if self.grid else "-"
        kernel = f", kernel={self.kernel}" if self.kernel else ""
        words = (
            f", {self.words_per_iteration:.4g} words/iter"
            if self.words_per_iteration is not None
            else ""
        )
        pipelined = ""
        if self.schedule == "pipelined":
            pipelined = (
                f", pipelined: {self.breakdown.exposed_communication:.4g} s "
                f"exposed + {self.breakdown.hidden_communication:.4g} s hidden comm"
            )
        return (
            f"variant={self.variant}, p={self.n_ranks}, grid={grid}, "
            f"predicted {self.breakdown.total:.4g} s/iter{words} "
            f"(machine={self.machine}{kernel}){pipelined}"
        )

    def to_dict(self) -> dict:
        """JSON-able form stored in :class:`~repro.core.result.NMFResult` metadata."""
        return {
            "variant": self.variant,
            "n_ranks": self.n_ranks,
            "grid": list(self.grid) if self.grid else None,
            "backend": self.backend,
            "solver": self.solver,
            "machine": self.machine,
            "problem": self.problem.to_dict(),
            "breakdown": self.breakdown.as_dict(),
            "words_per_iteration": self.words_per_iteration,
            "kernel": self.kernel,
            "schedule": self.schedule,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExecutionPlan":
        grid = payload.get("grid")
        return cls(
            variant=payload["variant"],
            n_ranks=payload["n_ranks"],
            grid=tuple(grid) if grid else None,
            backend=payload.get("backend"),
            solver=payload.get("solver", ""),
            machine=payload.get("machine", ""),
            problem=ProblemSpec.from_dict(payload["problem"]),
            breakdown=TimeBreakdown.from_parts(**payload["breakdown"]),
            words_per_iteration=payload.get("words_per_iteration"),
            kernel=payload.get("kernel"),
            schedule=payload.get("schedule", "blocking"),
        )


def _candidate_variant_names(variants: Optional[Sequence[str]]) -> List[str]:
    from repro.core.variants import available_variants, variant_name

    if variants is not None:
        return [variant_name(v) for v in variants]
    names = [v for v in PLANNER_VARIANT_ORDER]
    names += [v for v in available_variants() if v not in PLANNER_VARIANT_ORDER]
    return names


def plan_candidates(
    problem: ProblemSpec,
    p: int,
    machine=None,
    variants: Optional[Sequence[str]] = None,
    grid: Optional[Tuple[int, int]] = None,
    backend: Optional[str] = None,
    solver: str = "bpp",
    kernel: Optional[str] = None,
) -> List[ExecutionPlan]:
    """Score every (variant, grid) candidate for ``problem`` on ``p`` ranks.

    Candidates come from the variant registry: each registered variant that
    implements the analytic cost hook contributes one plan per entry of its
    ``candidate_grids(problem, p)`` (all ``pr × pc`` factorizations of ``p``
    for ``hpc2d``).  Returns the plans sorted by predicted per-iteration
    seconds, cheapest first; ties keep :data:`PLANNER_VARIANT_ORDER` order.

    Parameters
    ----------
    machine:
        :class:`~repro.perf.machine.MachineSpec` to price against; default
        the deterministic Edison constants (use
        :meth:`MachineSpec.calibrate` for the actual host).
    variants:
        Restrict to these registry names (``grid="auto"`` with an explicit
        variant plans only that variant).
    grid:
        Pin candidates to this one factorization of ``p``.  Grid-free
        variants cannot honour a pinned grid, so they are excluded; a grid
        that does not multiply to ``p`` raises.
    kernel:
        BPP kernel to price the NLS term for (``'scalar'``, ``'batched'``,
        ``'numba'`` or ``'auto'``); resolved against the kernels registry,
        then threaded through the cost hooks via
        :meth:`MachineSpec.for_kernel`.  ``None`` keeps default (scalar)
        pricing.
    backend:
        Execution backend the plans will run on.  Enables the pipelined
        twins (scored with the backend's overlap efficiency) and, for the
        wire backends (``'socket'``/``'mpi'``), reprices every collective
        at the link's alpha-beta costs via :meth:`MachineSpec.for_backend`
        — ``repro plan --backend socket`` therefore prices wire plans.
        In-process backends keep the machine's own network constants.
    """
    from repro.core.variants import get_variant
    from repro.perf.machine import edison_machine
    from repro.perf.model import OVERLAPPABLE_FRACTIONS, pipelined_breakdown

    if p < 1:
        raise ValueError(f"number of ranks must be >= 1, got {p}")
    if grid is not None and grid[0] * grid[1] != p:
        raise ValueError(f"grid {grid[0]}x{grid[1]} does not match p={p}")
    machine = machine or edison_machine()
    if kernel is not None:
        from repro.nls.kernels import resolve_kernel

        kernel = resolve_kernel(kernel)  # normalizes 'auto', rejects typos
        machine = machine.for_kernel(kernel)
    # Wire backends (socket/mpi) swap the network alpha/beta for the link's
    # measured/default costs; in-process backends return machine unchanged.
    machine = machine.for_backend(backend)

    plans: List[ExecutionPlan] = []
    for name in _candidate_variant_names(variants):
        variant = get_variant(name)
        if p > 1 and not variant.parallelizable:
            continue
        if problem.is_sparse and not variant.sparse_ok:
            continue
        for candidate_grid in variant.candidate_grids(problem, p):
            if grid is not None and (
                candidate_grid is None or tuple(candidate_grid) != tuple(grid)
            ):
                continue
            breakdown = variant.predicted_breakdown(
                problem, p, grid=candidate_grid, machine=machine
            )
            if breakdown is None:
                continue  # variant does not model itself; not plannable
            words = variant.predicted_words(problem, p, grid=candidate_grid)
            plans.append(
                ExecutionPlan(
                    variant=variant.name,
                    n_ranks=p,
                    grid=tuple(candidate_grid) if candidate_grid else None,
                    backend=backend,
                    solver=solver,
                    machine=machine.name,
                    problem=problem,
                    breakdown=breakdown,
                    words_per_iteration=words,
                    kernel=kernel,
                )
            )
            # Pipelined-schedule candidate: only when the caller named a
            # backend (overlap efficiency is a backend property) and that
            # backend can actually hide communication for this variant.
            # Word volume is identical — the schedule moves the same bytes.
            # overlap_fraction reads the machine's measured per-backend
            # hiding ratios when the spec was calibrated with
            # rate_overlap=True (repro plan --machine local), and the
            # static DEFAULT_OVERLAP_EFFICIENCY guesses otherwise.
            if (
                backend is not None
                and p > 1
                and variant.name in OVERLAPPABLE_FRACTIONS
                and machine.overlap_fraction(backend) > 0.0
            ):
                overlapped = pipelined_breakdown(
                    breakdown, variant.name, backend, machine
                )
                if overlapped.total < breakdown.total:
                    plans.append(
                        ExecutionPlan(
                            variant=variant.name,
                            n_ranks=p,
                            grid=tuple(candidate_grid) if candidate_grid else None,
                            backend=backend,
                            solver=solver,
                            machine=machine.name,
                            problem=problem,
                            breakdown=overlapped,
                            words_per_iteration=words,
                            kernel=kernel,
                            schedule="pipelined",
                        )
                    )
    if not plans:
        pinned = f" with grid pinned to {grid[0]}x{grid[1]}" if grid is not None else ""
        raise ValueError(
            f"no registered variant can model {problem.describe()} on p={p}"
            f"{pinned} (variants considered: {_candidate_variant_names(variants)})"
        )
    plans.sort(key=lambda plan: plan.breakdown.total)  # stable: ties keep order
    return plans


def make_plan(
    problem: ProblemSpec,
    p: int,
    machine=None,
    variants: Optional[Sequence[str]] = None,
    grid: Optional[Tuple[int, int]] = None,
    backend: Optional[str] = None,
    solver: str = "bpp",
    kernel: Optional[str] = None,
) -> ExecutionPlan:
    """The cheapest :class:`ExecutionPlan` for ``problem`` on ``p`` ranks.

    This is the argmin of :func:`plan_candidates` — the §5 selection rule
    generalized to every modeled variant and every factorization of ``p``.
    """
    return plan_candidates(
        problem,
        p,
        machine=machine,
        variants=variants,
        grid=grid,
        backend=backend,
        solver=solver,
        kernel=kernel,
    )[0]
