"""The planning layer: cost-model-driven variant and grid selection (§5).

This subsystem turns the analytic cost model from a read-only
figure-regeneration tool into the front half of a **plan → execute →
measure** loop:

* :class:`~repro.plan.problem.ProblemSpec` — the five numbers the model
  needs (``m``, ``n``, nnz, ``k``, word size), derivable from any dense or
  scipy-sparse matrix, any registered dataset, or bare dimensions;
* :func:`~repro.plan.planner.plan_candidates` /
  :func:`~repro.plan.planner.make_plan` — enumerate candidate variants ×
  all ``pr × pc`` factorizations of ``p``, score each with the per-variant
  cost hooks on the variant registry, and return the table / the argmin;
* :class:`~repro.plan.planner.ExecutionPlan` — what to run plus what the
  model expects (per-task :class:`~repro.comm.profiler.TimeBreakdown` and
  words moved per iteration);
* :func:`~repro.plan.report.render_plan_table` — the paper-Table-2-style
  candidate table behind the ``repro plan`` CLI command.

``repro.fit(A, k, variant="auto", grid="auto")`` invokes :func:`make_plan`
and records the chosen plan on the result (``result.plan``), so the
predicted breakdown sits next to the measured one.  Machine constants
default to the paper's Edison (deterministic, used by tests and figure
regeneration); :meth:`repro.perf.machine.MachineSpec.calibrate` prices
plans for the actual host instead.
"""

from repro.plan.planner import (
    PLANNER_VARIANT_ORDER,
    ExecutionPlan,
    make_plan,
    plan_candidates,
)
from repro.plan.problem import ProblemSpec, as_problem
from repro.plan.report import render_plan_table

__all__ = [
    "ExecutionPlan",
    "PLANNER_VARIANT_ORDER",
    "ProblemSpec",
    "as_problem",
    "make_plan",
    "plan_candidates",
    "render_plan_table",
]
