"""Rendering of planner candidate tables (the ``repro plan`` CLI output).

The table is paper-Table-2 style: one row per (variant, grid) candidate with
the predicted MM / Gram / NLS / communication split, the total, and the
predicted words moved per iteration; the planner's pick is starred.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.plan.planner import ExecutionPlan

#: Column order of the per-task split (computation, then §2.3 collectives).
_TASKS = ("MM", "Gram", "NLS", "AllGather", "ReduceScatter", "AllReduce")


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))


def render_plan_table(plans: Sequence[ExecutionPlan], machine_name: str = "") -> str:
    """Fixed-width candidate table for a list of plans (cheapest first).

    The first (cheapest) plan is marked with ``*`` in the leading column.
    All times are predicted per-iteration seconds.
    """
    if not plans:
        raise ValueError("no plans to render")
    problem = plans[0].problem
    machine = machine_name or plans[0].machine
    title = (
        f"Execution plan candidates for {problem.describe()} on p={plans[0].n_ranks} "
        f"ranks (machine={machine}; per-iteration predicted seconds)"
    )

    # Schedule columns appear only when a pipelined candidate is present, so
    # default (blocking-only) tables render exactly as they always have.
    pipelined = any(plan.schedule == "pipelined" for plan in plans)
    headers = ["", "variant", "grid"] + list(_TASKS)
    if pipelined:
        headers += ["schedule", "exposed", "hidden"]
    headers += ["total", "words/iter"]
    rows: List[List[str]] = []
    for i, plan in enumerate(plans):
        grid = f"{plan.grid[0]}x{plan.grid[1]}" if plan.grid else "-"
        words = (
            f"{plan.words_per_iteration:.4g}"
            if plan.words_per_iteration is not None
            else "-"
        )
        row = ["*" if i == 0 else "", plan.variant, grid]
        row += [f"{plan.breakdown.get(task):.4f}" for task in _TASKS]
        if pipelined:
            row += [
                plan.schedule,
                f"{plan.breakdown.exposed_communication:.4f}",
                f"{plan.breakdown.hidden_communication:.4f}",
            ]
        row += [f"{plan.breakdown.total:.4f}", words]
        rows.append(row)

    widths = [
        max(len(headers[i]), max(len(r[i]) for r in rows)) for i in range(len(headers))
    ]
    lines = [title, _format_row(headers, widths), _format_row(["-" * w for w in widths], widths)]
    lines += [_format_row(r, widths) for r in rows]
    chosen = plans[0]
    lines.append("")
    lines.append(f"* chosen: {chosen.summary()}")
    return "\n".join(lines)
