"""The :class:`ProblemSpec`: what the cost model needs to know about a problem.

The analytic model of §4.3/§5 prices an NMF iteration from five numbers —
``m``, ``n``, the nonzero count, the rank ``k`` and the word size.  Before
the planning layer existed, those numbers could only come from a *named*
:class:`~repro.data.registry.DatasetSpec`, which tied the whole analysis
stack to the paper's four datasets.  :class:`ProblemSpec` carries exactly
those five numbers and nothing else, and is derivable from

* any in-memory matrix (dense ndarray or scipy sparse) via
  :meth:`ProblemSpec.from_matrix` — this is what ``fit(A, k,
  variant="auto")`` uses,
* a registered dataset via :meth:`ProblemSpec.from_dataset` — the thin
  adapter that keeps the figure harness and the Table 2 benchmarks working
  on :class:`DatasetSpec` unchanged,
* bare dimensions via the constructor (the CLI's ``repro plan --shape``).

:func:`as_problem` is the coercion helper the cost functions use so they
accept any of the three spellings.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.util.errors import ShapeError


@dataclass(frozen=True)
class ProblemSpec:
    """Dimensions of one NMF problem instance, as the cost model sees it.

    Parameters
    ----------
    m, n:
        Data matrix dimensions.
    k:
        Target factorization rank.
    nnz:
        Nonzero count for sparse problems; ``None`` means dense (every
        entry counts).
    dtype:
        Element dtype name; the model works in 8-byte words, so this is
        informational provenance (the paper's runs are all float64).
    name:
        Optional human-readable label carried into plan tables and
        provenance (e.g. the dataset registry key).
    """

    m: int
    n: int
    k: int
    nnz: Optional[float] = None
    dtype: str = "float64"
    name: str = ""

    def __post_init__(self):
        if self.m < 1 or self.n < 1:
            raise ShapeError(f"matrix dimensions must be positive, got {self.m}x{self.n}")
        if self.k < 1:
            raise ShapeError(f"rank k must be >= 1, got {self.k}")
        if self.nnz is not None and not 0 <= self.nnz <= float(self.m) * float(self.n):
            raise ShapeError(
                f"nnz={self.nnz} outside [0, m*n={float(self.m) * float(self.n):g}]"
            )

    # -- derived quantities (the DatasetSpec-compatible views) --------------
    @property
    def is_sparse(self) -> bool:
        return self.nnz is not None

    @property
    def nnz_estimate(self) -> float:
        """Nonzeros the MM kernels touch: ``nnz`` sparse, ``m*n`` dense."""
        if self.nnz is not None:
            return float(self.nnz)
        return float(self.m) * float(self.n)

    @property
    def density(self) -> float:
        return self.nnz_estimate / (float(self.m) * float(self.n))

    def with_rank(self, k: int) -> "ProblemSpec":
        """The same problem at a different target rank."""
        return self if k == self.k else replace(self, k=k)

    def describe(self) -> str:
        """One-line form used by plan tables and summaries."""
        label = f"{self.name} " if self.name else ""
        shape = f"{self.m}x{self.n}"
        kind = f"sparse, nnz={self.nnz_estimate:.4g}" if self.is_sparse else "dense"
        return f"{label}({shape}, {kind}, k={self.k})"

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_matrix(cls, A, k: int, name: str = "") -> "ProblemSpec":
        """Derive the spec from any in-memory dense or scipy-sparse matrix."""
        import numpy as np

        from repro.util.validation import is_sparse

        if not is_sparse(A):
            A = np.asarray(A)
        if A.ndim != 2:
            raise ShapeError(f"expected a 2-D matrix, got {A.ndim}-D")
        m, n = A.shape
        nnz = float(A.nnz) if is_sparse(A) else None
        return cls(m=int(m), n=int(n), k=int(k), nnz=nnz, dtype=str(A.dtype), name=name)

    @classmethod
    def from_dataset(cls, spec, k: int) -> "ProblemSpec":
        """Adapter from a :class:`~repro.data.registry.DatasetSpec`.

        Duck-typed on the ``m``/``n``/``is_sparse``/``nnz_estimate``/``name``
        attributes so this module does not import :mod:`repro.data`.
        """
        nnz = float(spec.nnz_estimate) if spec.is_sparse else None
        return cls(
            m=int(spec.m),
            n=int(spec.n),
            k=int(k),
            nnz=nnz,
            name=str(getattr(spec, "name", "")),
        )

    def to_dict(self) -> dict:
        return {
            "m": self.m,
            "n": self.n,
            "k": self.k,
            "nnz": self.nnz,
            "dtype": self.dtype,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ProblemSpec":
        return cls(**payload)


def as_problem(spec, k: Optional[int] = None) -> ProblemSpec:
    """Coerce a :class:`ProblemSpec`, dataset spec or matrix into a ProblemSpec.

    ``k`` must be given unless ``spec`` is already a :class:`ProblemSpec`
    carrying it; when both are present and disagree, ``k`` wins (the cost
    functions historically took the rank as a separate argument).
    """
    if isinstance(spec, ProblemSpec):
        return spec if k is None else spec.with_rank(int(k))
    if hasattr(spec, "nnz_estimate") and hasattr(spec, "is_sparse"):
        if k is None:
            raise ShapeError("a target rank k is required to cost a dataset spec")
        return ProblemSpec.from_dataset(spec, k)
    if hasattr(spec, "shape"):
        if k is None:
            raise ShapeError("a target rank k is required to cost a matrix")
        return ProblemSpec.from_matrix(spec, k)
    raise TypeError(
        f"cannot derive a ProblemSpec from {type(spec).__name__!r}; expected a "
        "ProblemSpec, a DatasetSpec-like object or a dense/sparse matrix"
    )
