"""repro — reproduction of the PPoPP 2016 HPC-NMF paper.

This package reimplements, in pure Python (numpy/scipy), the system described
in "A High-Performance Parallel Algorithm for Nonnegative Matrix
Factorization" (Kannan, Ballard, Park; PPoPP 2016):

* an MPI-like SPMD communication substrate (:mod:`repro.comm`) with the
  collectives the paper relies on (all-gather, reduce-scatter, all-reduce) and
  an alpha-beta-gamma cost model,
* distributed dense/sparse matrices and factors on 1D and 2D processor grids
  (:mod:`repro.dist`): the block layout (:mod:`repro.dist.partition`), the
  ``A_ij`` data blocks (:mod:`repro.dist.distmatrix`), the ``(W_i)_j`` /
  ``(H_j)_i`` factor sub-blocks (:mod:`repro.dist.factors`) and sparse
  load-balance diagnostics (:mod:`repro.dist.load_balance`),
* the local nonnegative-least-squares solvers the ANLS framework plugs in —
  Block Principal Pivoting, Multiplicative Update, HALS and more
  (:mod:`repro.nls`),
* the paper's algorithms: sequential ANLS (Algorithm 1), Naive-Parallel-NMF
  (Algorithm 2) and HPC-NMF (Algorithm 3) in :mod:`repro.core`,
* dataset generators matching the paper's evaluation (:mod:`repro.data`),
* the performance model and experiment harness that regenerate every table
  and figure of the evaluation section (:mod:`repro.perf`), and
* the planning layer (:mod:`repro.plan`): the §5 cost model as an executable
  selection rule — ``fit(A, k, variant="auto", grid="auto")`` scores every
  modeled variant × grid and runs the argmin, recording the chosen
  :class:`~repro.plan.planner.ExecutionPlan` on the result.

Quickstart
----------
>>> import numpy as np
>>> from repro import fit
>>> A = np.abs(np.random.default_rng(0).standard_normal((200, 150)))
>>> result = fit(A, 10, max_iters=20, seed=0)
>>> result.W.shape, result.H.shape
((200, 10), (10, 150))

Every NMF flavor runs through :func:`repro.fit` (or the estimator-style
:class:`repro.NMF`) by variant registry name — ``fit(A, k,
variant="hpc2d", n_ranks=16, backend="lockstep")`` — see
:mod:`repro.core.variants`.  The top-level entry points are re-exported
lazily so that importing a subpackage (for example :mod:`repro.comm` in an
SPMD worker) does not pull in the whole library.
"""

from __future__ import annotations

from typing import Any

__version__ = "1.0.0"

__all__ = [
    "fit",
    "NMF",
    "nmf",
    "parallel_nmf",
    "NMFConfig",
    "NMFResult",
    "IterationObserver",
    "available_variants",
    "get_variant",
    "register_variant",
    "ProblemSpec",
    "ExecutionPlan",
    "make_plan",
    "plan_candidates",
    "__version__",
]

_LAZY_EXPORTS = {
    "fit": ("repro.core.api", "fit"),
    "NMF": ("repro.core.api", "NMF"),
    "nmf": ("repro.core.api", "nmf"),
    "parallel_nmf": ("repro.core.api", "parallel_nmf"),
    "NMFConfig": ("repro.core.config", "NMFConfig"),
    "NMFResult": ("repro.core.result", "NMFResult"),
    "IterationObserver": ("repro.core.observers", "IterationObserver"),
    "available_variants": ("repro.core.variants", "available_variants"),
    "get_variant": ("repro.core.variants", "get_variant"),
    "register_variant": ("repro.core.variants", "register_variant"),
    "ProblemSpec": ("repro.plan.problem", "ProblemSpec"),
    "ExecutionPlan": ("repro.plan.planner", "ExecutionPlan"),
    "make_plan": ("repro.plan.planner", "make_plan"),
    "plan_candidates": ("repro.plan.planner", "plan_candidates"),
}


def __getattr__(name: str) -> Any:
    """Lazily resolve the top-level convenience exports."""
    try:
        module_name, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))
