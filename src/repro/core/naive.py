"""Algorithm 2: Naive-Parallel-NMF.

This is the baseline the paper compares against (attributed to Fairbanks et
al. [5]): each of the ``p`` processors owns a *row* block ``A_i (m/p × n)`` of
the data and a *column* block ``A^i (m × n/p)`` (the data is stored twice), a
row block ``W_i (m/p × k)`` and a column block ``H^i (k × n/p)``.

Per iteration (lines 3-6 of Algorithm 2):

1. all-gather the full ``H`` (``k × n``) on every processor,
2. locally compute ``H Hᵀ`` (redundantly on every processor), ``A_i Hᵀ``, and
   solve the NLS problem for ``W_i``,
3. all-gather the full ``W`` (``m × k``) on every processor,
4. locally compute ``Wᵀ W`` (redundantly), ``Wᵀ A^i``, and solve for ``H^i``.

The communication volume is ``(m + n) k`` words per iteration (the two
all-gathers of whole factor matrices) regardless of sparsity — the quantity
HPC-NMF improves to ``O(min{√(mnk²/p), nk})``.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.comm.communicator import Comm
from repro.comm.cost import CostLedger
from repro.comm.nonblocking import finish
from repro.comm.profiler import Profiler, TaskCategory
from repro.core.config import Algorithm, NMFConfig
from repro.core.initialization import init_h_slice
from repro.core.local_ops import gram, local_cross_term, matmul_a_ht, matmul_wt_a
from repro.core.objective import objective_from_grams
from repro.core.observers import IterationObserver, LoopControl
from repro.core.result import NMFResult
from repro.dist.distmatrix import DoublePartitioned1D


def naive_parallel_nmf(
    comm: Comm,
    A,
    config: NMFConfig,
    observers: Optional[Sequence[IterationObserver]] = None,
) -> dict:
    """SPMD per-rank program for Algorithm 2.

    Parameters
    ----------
    comm:
        The world communicator (``p`` ranks).
    A:
        The global data matrix, readable by every rank (each rank slices out
        only its own row and column blocks; nothing is communicated).
    config:
        Run options; ``config.solver`` selects the local NLS method.
    observers:
        Iteration observers, notified on rank 0 (see
        :mod:`repro.core.observers` for the SPMD dispatch rules).

    Returns
    -------
    dict with this rank's factor blocks and diagnostics; assemble a global
    :class:`~repro.core.result.NMFResult` with :func:`assemble_naive_result`.
    """
    p, rank = comm.size, comm.rank
    m, n = A.shape
    k = config.k

    profiler = Profiler()
    solver = config.make_solver()

    data = DoublePartitioned1D.from_global(rank, p, A)
    row_lo, row_hi = data.row_range
    col_lo, col_hi = data.col_range

    # Same-seed initialisation (§6.1.3): every rank slices the same global H.
    H_local = init_h_slice(k, n, config.seed, (col_lo, col_hi))
    W_local = np.zeros((row_hi - row_lo, k))

    norm_a_sq_local = (
        float(data.row_block.data @ data.row_block.data)
        if data.is_sparse
        else float(np.vdot(data.row_block, data.row_block))
    )
    norm_a_sq = comm.allreduce_scalar(norm_a_sq_local)

    # Attach the ledger after the setup-phase reduction so it records only the
    # per-iteration communication (§4.3's (m+n)k words of all-gather).
    ledger = CostLedger()
    comm.attach_ledger(ledger)

    control = LoopControl(config, observers, comm=comm, variant="naive").start()

    # Reusable collective workspaces: the two factor all-gathers and the
    # error-path Gram all-reduce hit the same shapes every iteration, so
    # their results land in persistent per-rank buffers instead of fresh
    # allocations (§4.3's (m+n)k words are still *communicated*, the ledger
    # is unaffected — only the receive-side allocation churn goes away).
    ws = comm.workspace
    H_full_buf = ws.get("H_full", (k, n))
    W_full_buf = ws.get("W_full", (m, k))
    gram_h_new_buf = ws.get("gram_h_new", (k, k))

    # Gram cache across half-iterations: the error path already all-reduces
    # H Hᵀ from the per-rank pieces, which is the same quantity (up to
    # summation order — within solver tolerance) that the next iteration
    # recomputes redundantly from the gathered H.  Reusing it removes one of
    # §4.3's redundant O(nk²) per-rank Grams whenever the objective is
    # tracked; every rank takes the branch in the same iterations.
    cached_gram_h = None

    # Pipelined schedule (config.overlap): the line-3 H all-gather of
    # iteration i+1 is issued right after iteration i's line-6 NLS, hiding it
    # behind the error path.  The W gather stays blocking — its result is
    # consumed immediately by the line-5 Gram, so there is nothing to overlap
    # it with.  Same collectives, same program order, same count on every
    # rank → byte-identical factors and ledgers (see repro.comm.nonblocking).
    pipeline = bool(config.overlap) and p > 1
    # Speculative issue before the stopping decision is only safe when the
    # loop provably runs all max_iters iterations (see hpc_nmf).
    speculative = pipeline and config.tol == 0 and not observers
    if pipeline:
        comm.ensure_nonblocking()
    h_gather = comm.iallgatherv(H_local, axis=1, out=H_full_buf) if pipeline else None

    # Deferred error path (speculative regime only, twin of hpc_nmf): the
    # H-Gram all-reduce stays in flight across the iteration boundary — its
    # result is next iteration's gram_h via the cached_gram_h reuse — and is
    # claimed just before the line-4 NLS, overlapping the cross-term
    # reduction, the gather wait and the A_i Hᵀ matmul.  The history record
    # travels with it, which is safe because tol == 0 with no observers means
    # record() can never request a stop.
    pending = None

    def claim_pending():
        nonlocal pending, cached_gram_h
        gram_h_new = finish(pending["handle"], profiler, TaskCategory.ALL_REDUCE)
        objective = objective_from_grams(
            norm_a_sq, pending["cross"], pending["gram_w"], gram_h_new
        )
        rel_error = float(np.sqrt(objective / norm_a_sq)) if norm_a_sq > 0 else 0.0
        control.record(
            pending["iteration"],
            objective=objective,
            relative_error=rel_error,
            seconds=pending["seconds"],
        )
        cached_gram_h = gram_h_new
        pending = None
        return gram_h_new

    try:
        for iteration in range(config.max_iters):
            iter_start = time.perf_counter()

            # --- Compute W given H (lines 3-4) ----------------------------
            if h_gather is not None:
                H = finish(h_gather, profiler, TaskCategory.ALL_GATHER)  # full k × n
                h_gather = None
            else:
                with profiler.task(TaskCategory.ALL_GATHER):
                    H = comm.allgatherv(H_local, axis=1, out=H_full_buf)  # full k × n
            gram_h = None
            if pending is not None:
                pass  # gram_h arrives when the in-flight error path is claimed
            elif cached_gram_h is not None:
                gram_h = cached_gram_h
            else:
                with profiler.task(TaskCategory.GRAM):
                    gram_h = gram(H, transpose_first=False)  # redundant on every rank
            with profiler.task(TaskCategory.MM):
                a_ht = matmul_a_ht(data.row_block, H.T)      # (m/p) × k
            if pending is not None:
                gram_h = claim_pending()
            with profiler.task(TaskCategory.NLS):
                Wt_local = solver.solve(
                    gram_h, a_ht.T, x0=W_local.T if np.any(W_local) else None
                )
            W_local = Wt_local.T

            # --- Compute H given W (lines 5-6) ----------------------------
            with profiler.task(TaskCategory.ALL_GATHER):
                W = comm.allgatherv(W_local, axis=0, out=W_full_buf)  # full m × k
            with profiler.task(TaskCategory.GRAM):
                gram_w = gram(W, transpose_first=True)       # redundant on every rank
            with profiler.task(TaskCategory.MM):
                wt_a = matmul_wt_a(W, data.col_block)        # k × (n/p)
            with profiler.task(TaskCategory.NLS):
                H_local = solver.solve(gram_w, wt_a, x0=H_local)

            if speculative and iteration + 1 < config.max_iters:
                # Next iteration's line-3 gather overlaps the error path.
                h_gather = comm.iallgatherv(H_local, axis=1, out=H_full_buf)

            objective = rel_error = float("nan")
            if config.compute_error:
                # Gram trick with distributed pieces: cross term and H-Gram are
                # summed over ranks with small all-reduces.
                with profiler.task(TaskCategory.GRAM):
                    local_gram_h = gram(H_local, transpose_first=False)
                # Pipelined: issue the H-Gram all-reduce first so it overlaps
                # at least the cross-term reduction (and, speculatively, next
                # iteration's gather + matmul).  Same collectives either way;
                # record=False + record_collective books the in-flight one at
                # the blocking schedule's program point (after the cross), so
                # the ledger's accumulation order stays schedule-invariant.
                gram_h_new_handle = (
                    comm.iallreduce(local_gram_h, out=gram_h_new_buf, record=False)
                    if pipeline
                    else None
                )
                with profiler.task(TaskCategory.ALL_REDUCE):
                    cross = comm.allreduce_scalar(local_cross_term(wt_a, H_local))
                if gram_h_new_handle is not None:
                    comm.record_collective(
                        "all_reduce",
                        local_gram_h.size * local_gram_h.itemsize / 8.0,
                    )
                if speculative and gram_h_new_handle is not None:
                    pending = {
                        "iteration": iteration,
                        "cross": cross,
                        "gram_w": gram_w,
                        "handle": gram_h_new_handle,
                        "seconds": time.perf_counter() - iter_start,
                    }
                    continue  # record() runs at the claim point
                if gram_h_new_handle is not None:
                    gram_h_new = finish(
                        gram_h_new_handle, profiler, TaskCategory.ALL_REDUCE
                    )
                else:
                    with profiler.task(TaskCategory.ALL_REDUCE):
                        gram_h_new = comm.allreduce(
                            local_gram_h, out=gram_h_new_buf
                        )
                cached_gram_h = gram_h_new
                objective = objective_from_grams(norm_a_sq, cross, gram_w, gram_h_new)
                rel_error = float(np.sqrt(objective / norm_a_sq)) if norm_a_sq > 0 else 0.0
            if control.record(
                iteration,
                objective=objective,
                relative_error=rel_error,
                seconds=time.perf_counter() - iter_start,
            ):
                break
            if pipeline and h_gather is None and iteration + 1 < config.max_iters:
                h_gather = comm.iallgatherv(H_local, axis=1, out=H_full_buf)
        if pending is not None:
            # The final iteration's error path has no next iteration to hide
            # behind: claim it now and write its history record.
            claim_pending()
    finally:
        if h_gather is not None:
            h_gather.wait()
        if pending is not None:
            pending["handle"].wait()
            pending = None
        comm.shutdown_nonblocking()

    return {
        "rank": rank,
        "W_local": W_local,
        "H_local": H_local,
        "w_range": (row_lo, row_hi),
        "h_range": (col_lo, col_hi),
        "history": control.history,
        "breakdown": profiler.snapshot(),
        "ledger": ledger,
        "iterations": control.iterations,
        "converged": control.converged,
        "shape": (m, n),
    }


def assemble_naive_result(per_rank: list[dict], config: NMFConfig) -> NMFResult:
    """Combine the per-rank outputs of :func:`naive_parallel_nmf` into one result."""
    from repro.comm.profiler import max_over_ranks

    per_rank = sorted(per_rank, key=lambda d: d["rank"])
    m, n = per_rank[0]["shape"]
    k = config.k
    W = np.zeros((m, k))
    H = np.zeros((k, n))
    for entry in per_rank:
        lo, hi = entry["w_range"]
        W[lo:hi] = entry["W_local"]
        lo, hi = entry["h_range"]
        H[:, lo:hi] = entry["H_local"]
    return NMFResult(
        W=W,
        H=H,
        config=config.with_options(algorithm=Algorithm.NAIVE),
        iterations=per_rank[0]["iterations"],
        history=per_rank[0]["history"],
        breakdown=max_over_ranks([e["breakdown"] for e in per_rank]),
        ledger_summary=per_rank[0]["ledger"].summary(),
        n_ranks=len(per_rank),
        grid_shape=(len(per_rank), 1),
        converged=per_rank[0]["converged"],
        variant="naive",
        backend=config.backend,
    )
