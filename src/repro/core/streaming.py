"""Incremental (streaming) NMF for frame-by-frame video processing.

The paper's video scenario (§6.1.1) notes that "only the last minute or two of
video is taken from the live video camera" and cites the incremental
adjustment algorithm of Kim, He & Park (its reference [12]).  This module
provides that capability as an extension: a sliding-window NMF whose factors
are *warm-started* from the previous window instead of being recomputed from
scratch, which is what makes per-frame updating affordable.

The update rule per new frame (one new column ``a``):

1. append ``a`` to the window and drop the oldest column if the window is full;
2. compute the new column's coefficients ``h = argmin_{h>=0} ‖a − W h‖``
   (a single small NLS solve with the existing Gram matrix);
3. every ``refresh_every`` frames, run a few full ANLS sweeps over the window
   warm-started from the current factors to let the basis ``W`` drift with the
   scene.

This is deliberately the simple, well-understood variant of incremental NMF:
the point is to exercise the warm-start path of the solvers and to support the
streaming-video example, not to reproduce reference [12] (a different paper).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.core.config import NMFConfig
from repro.core.local_ops import gram, matmul_a_ht, matmul_wt_a
from repro.core.objective import relative_error
from repro.util.errors import ShapeError
from repro.util.validation import check_rank


class StreamingNMF:
    """Sliding-window NMF with warm-started updates.

    Parameters
    ----------
    n_pixels:
        Number of rows of the data (pixels per frame).
    k:
        Rank of the background model.
    window:
        Number of most-recent frames kept in the working window.
    refresh_every:
        Run ``refresh_iters`` full ANLS sweeps every this many appended frames.
    refresh_iters:
        Number of warm-started ANLS sweeps per refresh.
    solver, seed:
        As for batch NMF.
    """

    def __init__(
        self,
        n_pixels: int,
        k: int,
        window: int = 60,
        refresh_every: int = 10,
        refresh_iters: int = 2,
        solver: str = "bpp",
        seed: int = 0,
    ):
        if window < 2:
            raise ShapeError(f"window must be >= 2 frames, got {window}")
        check_rank(k, n_pixels, window)
        if refresh_every < 1:
            raise ShapeError(f"refresh_every must be >= 1, got {refresh_every}")
        self.n_pixels = int(n_pixels)
        self.k = int(k)
        self.window = int(window)
        self.refresh_every = int(refresh_every)
        self.refresh_iters = int(refresh_iters)
        self._solver = NMFConfig(k=k, solver=solver, seed=seed).make_solver()
        self._frames: Deque[np.ndarray] = deque(maxlen=window)
        self._coeffs: Deque[np.ndarray] = deque(maxlen=window)
        rng = np.random.default_rng(seed)
        self.W = rng.random((n_pixels, k))
        self._frames_seen = 0

    # -- streaming interface -------------------------------------------------
    @property
    def n_frames_in_window(self) -> int:
        return len(self._frames)

    @property
    def frames_seen(self) -> int:
        return self._frames_seen

    def current_window(self) -> np.ndarray:
        """The window as a pixels × frames matrix (columns oldest to newest)."""
        if not self._frames:
            return np.zeros((self.n_pixels, 0))
        return np.column_stack(list(self._frames))

    def current_coefficients(self) -> np.ndarray:
        """The k × frames coefficient matrix matching :meth:`current_window`."""
        if not self._coeffs:
            return np.zeros((self.k, 0))
        return np.column_stack(list(self._coeffs))

    def push_frame(self, frame: np.ndarray) -> np.ndarray:
        """Ingest one frame (length ``n_pixels``); returns its foreground residual.

        The residual ``max(frame − W h, 0)`` highlights the moving objects of
        this frame under the current background model.
        """
        frame = np.asarray(frame, dtype=np.float64).reshape(-1)
        if frame.shape != (self.n_pixels,):
            raise ShapeError(
                f"frame must have {self.n_pixels} pixels, got {frame.shape}"
            )
        # Coefficients of the new frame under the current basis.
        gram_w = gram(self.W, transpose_first=True)
        rhs = self.W.T @ frame
        h = self._solver.solve(gram_w, rhs[:, None])[:, 0]

        self._frames.append(frame)
        self._coeffs.append(h)
        self._frames_seen += 1

        if self._frames_seen % self.refresh_every == 0 and len(self._frames) >= 2:
            self._refresh()
            # Recompute this frame's coefficients under the refreshed basis.
            gram_w = gram(self.W, transpose_first=True)
            h = self._solver.solve(gram_w, (self.W.T @ frame)[:, None])[:, 0]
            self._coeffs[-1] = h

        return np.maximum(frame - self.W @ h, 0.0)

    def background(self) -> np.ndarray:
        """The current background estimate for the newest frame."""
        if not self._coeffs:
            return np.zeros(self.n_pixels)
        return self.W @ self._coeffs[-1]

    def window_error(self) -> float:
        """Relative reconstruction error over the current window."""
        A = self.current_window()
        if A.shape[1] == 0:
            return 0.0
        return relative_error(A, self.W, self.current_coefficients())

    # -- internal ------------------------------------------------------------
    def _refresh(self) -> None:
        """A few warm-started ANLS sweeps over the current window."""
        A = self.current_window()
        H = self.current_coefficients()
        Wt = self.W.T
        for _ in range(self.refresh_iters):
            gram_h = gram(H, transpose_first=False)
            a_ht = matmul_a_ht(A, H.T)
            Wt = self._solver.solve(gram_h, a_ht.T, x0=Wt)
            W = Wt.T
            gram_w = gram(W, transpose_first=True)
            wt_a = matmul_wt_a(W, A)
            H = self._solver.solve(gram_w, wt_a, x0=H)
            self.W = W
        # Push refreshed coefficients back into the deque column by column.
        for idx in range(H.shape[1]):
            self._coeffs[idx] = H[:, idx]
