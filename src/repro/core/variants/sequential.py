"""The ``sequential`` variant: Algorithm 1, the ANLS correctness reference."""

from __future__ import annotations

from repro.core.anls import anls_nmf
from repro.core.config import Algorithm, NMFConfig
from repro.core.result import NMFResult
from repro.core.variants.base import Variant, register_variant


@register_variant
class SequentialVariant(Variant):
    """Single-process ANLS (the reference the parallel variants must match)."""

    name = "sequential"
    summary = "Algorithm 1: sequential ANLS reference"
    parallelizable = False
    sparse_ok = True

    def run(self, A, config: NMFConfig, observers=()) -> NMFResult:
        cfg = config.with_options(algorithm=Algorithm.SEQUENTIAL, n_ranks=1)
        return anls_nmf(A, cfg, observers=observers)
