"""The ``sequential`` variant: Algorithm 1, the ANLS correctness reference."""

from __future__ import annotations

from repro.core.anls import anls_nmf
from repro.core.config import Algorithm, NMFConfig
from repro.core.result import NMFResult
from repro.core.variants.base import Variant, register_variant


@register_variant
class SequentialVariant(Variant):
    """Single-process ANLS (the reference the parallel variants must match)."""

    name = "sequential"
    label = "Sequential"
    summary = "Algorithm 1: sequential ANLS reference"
    parallelizable = False
    sparse_ok = True

    def predicted_breakdown(self, problem, p, grid=None, machine=None):
        """Single-process cost: Algorithm 2's closed form at ``p = 1``.

        At one process the Naive and HPC formulas coincide (all collectives
        are free, the Gram "redundancy" is the whole computation), so the
        planner can compare staying sequential against going parallel.
        """
        if p != 1:
            return None
        from repro.perf.model import naive_breakdown

        return naive_breakdown(problem, problem.k, 1, machine=machine)

    def predicted_words(self, problem, p, grid=None):
        return 0.0 if p == 1 else None

    def run(self, A, config: NMFConfig, observers=()) -> NMFResult:
        cfg = config.with_options(algorithm=Algorithm.SEQUENTIAL, n_ranks=1)
        return anls_nmf(A, cfg, observers=observers)
