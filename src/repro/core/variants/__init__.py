"""The variant registry: every NMF flavor behind one front door.

Seven variants ship registered (one module each):

* ``sequential`` — Algorithm 1, the ANLS reference (:mod:`.sequential`);
* ``naive``, ``hpc1d``, ``hpc2d`` — the SPMD Algorithms 2/3 (:mod:`.parallel`);
* ``symmetric`` — SymNMF graph clustering (:mod:`.symmetric`);
* ``regularized`` — ridge/L1 factor penalties (:mod:`.regularized`);
* ``streaming`` — sliding-window incremental NMF (:mod:`.streaming`).

:func:`repro.fit` resolves its ``variant=`` argument here; the CLI derives
its ``--variant`` choices and the ``repro variants`` listing from
:func:`available_variants`.  Register your own with::

    from repro.core.variants import Variant, register_variant

    @register_variant
    class MyVariant(Variant):
        name = "mine"
        def run(self, A, config, observers=()):
            ...

after which ``repro.fit(A, k, variant="mine")`` dispatches to it — no other
code changes anywhere.
"""

from repro.core.variants.base import (
    Variant,
    available_variants,
    get_variant,
    register_variant,
    variant_name,
)

__all__ = [
    "Variant",
    "available_variants",
    "get_variant",
    "register_variant",
    "variant_name",
]
