"""The ``regularized`` variant: ridge / L1 penalties on both factors."""

from __future__ import annotations

from typing import Optional

from repro.core.config import NMFConfig
from repro.core.regularized import Regularization, regularized_nmf
from repro.core.result import NMFResult
from repro.core.variants.base import Variant, register_variant


@register_variant
class RegularizedVariant(Variant):
    """Sequential ANLS with Frobenius (ridge) and/or L1 factor penalties.

    Extra options: pass a full ``regularization=Regularization(...)`` or the
    individual weights ``frobenius=`` / ``l1=``::

        repro.fit(A, k, variant="regularized", l1=0.5)
    """

    name = "regularized"
    summary = "Ridge/L1-regularized ANLS (same communication pattern as plain NMF)"
    parallelizable = False
    sparse_ok = True
    supports_regularization = True

    def run(
        self,
        A,
        config: NMFConfig,
        observers=(),
        regularization: Optional[Regularization] = None,
        frobenius: float = 0.0,
        l1: float = 0.0,
    ) -> NMFResult:
        if regularization is not None and (frobenius or l1):
            raise TypeError(
                "pass either regularization=Regularization(...) or the "
                "frobenius=/l1= weights, not both"
            )
        if regularization is None:
            regularization = Regularization(frobenius=frobenius, l1=l1)
        return regularized_nmf(A, config, regularization, observers=observers)
