"""The ``symmetric`` variant: SymNMF for graph clustering (paper ref. [13])."""

from __future__ import annotations

from typing import Optional

from repro.core.config import NMFConfig
from repro.core.result import NMFResult
from repro.core.symmetric import SymNMFResult, symmetric_nmf
from repro.core.variants.base import Variant, register_variant
from repro.util.validation import check_matrix, check_nonnegative


@register_variant
class SymmetricVariant(Variant):
    """Symmetric NMF ``S ≈ G Gᵀ`` via the penalized ANLS relaxation.

    Square input is treated as a similarity/adjacency matrix (symmetrized as
    ``(S + Sᵀ)/2``, the standard co-linkage similarity for directed graphs).
    Rectangular ``m × n`` input is first reduced to the ``n × n`` column
    co-occurrence similarity ``AᵀA`` — the bipartite-graph reading of a
    word-document or pixel-frame matrix — so every registered dataset can run
    through this variant.

    Extra option: ``alpha`` (symmetry-penalty weight; ``None`` applies the
    ``max(S)²`` heuristic from the SymNMF literature).
    """

    name = "symmetric"
    summary = "Symmetric NMF (S = G G^T) for graph clustering"
    result_class = SymNMFResult
    parallelizable = False
    sparse_ok = True
    symmetric_input = True

    def run(
        self,
        A,
        config: NMFConfig,
        observers=(),
        alpha: Optional[float] = None,
    ) -> NMFResult:
        A = check_matrix(A, "A")
        check_nonnegative(A, "A")
        if A.shape[0] != A.shape[1]:
            A = A.T @ A  # column co-occurrence similarity of the bipartite graph
        return symmetric_nmf(A, config.k, alpha=alpha, observers=observers, config=config)
