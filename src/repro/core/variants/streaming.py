"""The ``streaming`` variant: sliding-window incremental NMF (§6.1.1)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.config import NMFConfig
from repro.core.observers import LoopControl
from repro.core.result import NMFResult
from repro.core.streaming import StreamingNMF
from repro.core.variants.base import Variant, register_variant
from repro.util.errors import ShapeError
from repro.util.validation import check_matrix, check_nonnegative, is_sparse


@register_variant
class StreamingVariant(Variant):
    """Replay the columns of ``A`` as a frame stream through :class:`StreamingNMF`.

    Each column is pushed as one frame ("one observer event per frame"); the
    result's ``W`` is the final basis and ``H`` the coefficients of the last
    window, so ``W @ H`` reconstructs the most recent ``window`` frames.  For
    a live feed, drive :class:`repro.core.streaming.StreamingNMF` directly.

    The stream length is the *data*, not a solver knob: the loop runs once
    per column of ``A`` and ``config.max_iters`` does not apply (the
    per-refresh ANLS depth is ``refresh_iters``).  ``config.tol`` and
    observers still stop the stream early, and ``compute_error=False`` skips
    the per-frame window-error measurement.

    Extra options: ``window`` (frames kept, default ``min(n, 60)``),
    ``refresh_every`` and ``refresh_iters`` (warm-started ANLS refresh
    cadence/depth).
    """

    name = "streaming"
    summary = "Sliding-window incremental NMF over the columns of A"
    parallelizable = False
    sparse_ok = False

    def run(
        self,
        A,
        config: NMFConfig,
        observers=(),
        window: Optional[int] = None,
        refresh_every: int = 10,
        refresh_iters: int = 2,
    ) -> NMFResult:
        A = check_matrix(A, "A")
        if is_sparse(A):
            raise ShapeError("the streaming variant needs a dense frame matrix")
        check_nonnegative(A, "A")
        m, n = A.shape
        if n < 2:
            raise ShapeError(f"streaming needs at least 2 frames (columns), got {n}")
        window = min(window if window is not None else 60, n)

        model = StreamingNMF(
            n_pixels=m,
            k=config.k,
            window=window,
            refresh_every=refresh_every,
            refresh_iters=refresh_iters,
            solver=config.solver,
            seed=config.seed,
        )
        control = LoopControl(config, observers, variant="streaming").start()

        import time

        for frame_idx in range(n):
            start = time.perf_counter()
            model.push_frame(A[:, frame_idx])
            rel_error = (
                model.window_error() if config.compute_error else float("nan")
            )
            if control.record(
                frame_idx,
                relative_error=rel_error,
                seconds=time.perf_counter() - start,
                factors=(model.W, model.current_coefficients()),
            ):
                break

        result = NMFResult(
            W=np.ascontiguousarray(model.W),
            H=np.ascontiguousarray(model.current_coefficients()),
            config=config,
            iterations=control.iterations,
            history=control.history,
            converged=control.converged,
            variant="streaming",
        )
        return control.finish(result)
