"""The SPMD variants: Algorithm 2 (``naive``) and Algorithm 3 (``hpc1d``/``hpc2d``).

Each run launches ``config.n_ranks`` ranks of the configured execution
backend (``config.backend``; see :mod:`repro.comm.backends`), executes the
per-rank program from :mod:`repro.core.naive` / :mod:`repro.core.hpc_nmf`,
and assembles the per-rank factor blocks into one global
:class:`~repro.core.result.NMFResult`.
"""

from __future__ import annotations

from repro.comm.backends import run_spmd
from repro.core.config import Algorithm, NMFConfig
from repro.core.hpc_nmf import assemble_hpc_result, hpc_nmf
from repro.core.naive import assemble_naive_result, naive_parallel_nmf
from repro.core.observers import notify_finish
from repro.core.result import NMFResult
from repro.core.variants.base import Variant, register_variant
from repro.util.validation import check_matrix, check_nonnegative, check_rank


class _SPMDVariant(Variant):
    """Shared validation + launch scaffolding of the SPMD variants."""

    parallelizable = True
    sparse_ok = True

    def _validate(self, A, config: NMFConfig):
        A = check_matrix(A, "A")
        check_nonnegative(A, "A")
        m, n = A.shape
        check_rank(config.k, m, n)
        return A


@register_variant
class NaiveVariant(_SPMDVariant):
    """Algorithm 2: all-gathers whole factor matrices every iteration."""

    name = "naive"
    label = "Naive"
    summary = "Algorithm 2: Naive-Parallel-NMF baseline ((m+n)k words/iter)"

    def predicted_breakdown(self, problem, p, grid=None, machine=None):
        from repro.perf.model import naive_breakdown

        return naive_breakdown(problem, problem.k, p, machine=machine)

    def predicted_words(self, problem, p, grid=None):
        from repro.perf.model import naive_words_per_iteration

        return naive_words_per_iteration(problem, problem.k, p)

    def run(self, A, config: NMFConfig, observers=()) -> NMFResult:
        A = self._validate(A, config)
        cfg = config.with_options(algorithm=Algorithm.NAIVE)
        per_rank = run_spmd(
            cfg.n_ranks,
            naive_parallel_nmf,
            A,
            cfg,
            name="naive-nmf",
            backend=cfg.backend,
            observers=tuple(observers or ()),
        )
        return notify_finish(observers, assemble_naive_result(per_rank, cfg))


class _HpcVariant(_SPMDVariant):
    """Algorithm 3 scaffolding; subclasses pin the grid-selection mode."""

    algorithm: Algorithm

    def _default_grid(self, problem, p):
        """The grid this variant runs on when none is given explicitly."""
        raise NotImplementedError

    def predicted_breakdown(self, problem, p, grid=None, machine=None):
        from repro.perf.model import hpc_breakdown

        grid = grid or self._default_grid(problem, p)
        return hpc_breakdown(problem, problem.k, p, grid=grid, machine=machine)

    def predicted_words(self, problem, p, grid=None):
        from repro.perf.model import hpc_words_per_iteration

        grid = grid or self._default_grid(problem, p)
        return hpc_words_per_iteration(problem, problem.k, p, grid=grid)

    def run(self, A, config: NMFConfig, observers=()) -> NMFResult:
        A = self._validate(A, config)
        cfg = config.with_options(algorithm=self.algorithm)
        per_rank = run_spmd(
            cfg.n_ranks,
            hpc_nmf,
            A,
            cfg,
            name="hpc-nmf",
            backend=cfg.backend,
            observers=tuple(observers or ()),
        )
        return notify_finish(observers, assemble_hpc_result(per_rank, cfg))


@register_variant
class Hpc1DVariant(_HpcVariant):
    """Algorithm 3 on the 1D grid ``pr = p, pc = 1`` (the paper's HPC-NMF-1D)."""

    name = "hpc1d"
    label = "HPC-NMF-1D"
    summary = "Algorithm 3 on a 1D grid (pr = p, pc = 1)"
    algorithm = Algorithm.HPC_1D

    def _default_grid(self, problem, p):
        return (p, 1)

    def candidate_grids(self, problem, p):
        return ((p, 1),)


@register_variant
class Hpc2DVariant(_HpcVariant):
    """Algorithm 3 with the §5 grid-selection rule (the paper's contribution)."""

    name = "hpc2d"
    label = "HPC-NMF-2D"
    summary = "Algorithm 3: HPC-NMF on the §5-selected pr x pc grid"
    algorithm = Algorithm.HPC_2D

    def _default_grid(self, problem, p):
        from repro.comm.grid import choose_grid

        return choose_grid(problem.m, problem.n, p)

    def candidate_grids(self, problem, p):
        """Every factorization of ``p`` — the planner's brute-force search space."""
        from repro.comm.grid import factor_pairs

        return tuple(factor_pairs(p))
