"""The :class:`Variant` descriptor and the variant registry.

A *variant* is one NMF flavor behind the :func:`repro.fit` front door:
Algorithm 1 (``sequential``), Algorithm 2 (``naive``), Algorithm 3 on a 1D or
2D grid (``hpc1d`` / ``hpc2d``), and the paper-motivated extensions
(``symmetric``, ``regularized``, ``streaming``).  The registry mirrors the
solver registry (:mod:`repro.nls.base`) and the backend registry
(:mod:`repro.comm.backends`): adding a variant is one registered module —
no dispatch table anywhere else needs editing, and the CLI's ``--variant``
choices and ``repro variants`` listing update themselves.

Each variant declares **capability flags** the front door enforces or
surfaces:

``parallelizable``
    Runs as an SPMD program on ``config.n_ranks`` ranks of an execution
    backend; non-parallelizable variants reject ``n_ranks > 1``.
``sparse_ok``
    Accepts ``scipy.sparse`` input.
``symmetric_input``
    Interprets the input as a square similarity/adjacency matrix (and adapts
    rectangular input rather than factorizing it directly).
``supports_regularization``
    Accepts factor-regularization options (ridge / L1).

and implements one uniform entry point::

    run(A, config, observers=(), **variant_options) -> NMFResult
"""

from __future__ import annotations

import abc
import inspect
from typing import Dict, List, Optional, Sequence

from repro.core.config import NMFConfig
from repro.core.observers import IterationObserver
from repro.core.result import NMFResult


class Variant(abc.ABC):
    """Descriptor + entry point of one registered NMF flavor."""

    #: registry name; subclasses override
    name: str = "abstract"
    #: one-line description shown by ``repro variants``
    summary: str = ""
    #: the NMFResult (sub)class this variant produces; NMFResult.load() uses
    #: it to round-trip saved results without per-variant special cases.
    result_class = NMFResult
    # capability flags
    parallelizable: bool = False
    sparse_ok: bool = True
    symmetric_input: bool = False
    supports_regularization: bool = False

    @abc.abstractmethod
    def run(
        self,
        A,
        config: NMFConfig,
        observers: Optional[Sequence[IterationObserver]] = (),
        **options,
    ) -> NMFResult:
        """Execute this variant on ``A`` under ``config``.

        ``observers`` follow the protocol of :mod:`repro.core.observers`;
        ``options`` are this variant's extra knobs (see
        :meth:`extra_options`).  Returns a provenance-stamped
        :class:`~repro.core.result.NMFResult`.
        """

    def capabilities(self) -> Dict[str, bool]:
        """The four capability flags as a dict (used by the CLI listing)."""
        return {
            "parallelizable": self.parallelizable,
            "sparse_ok": self.sparse_ok,
            "symmetric_input": self.symmetric_input,
            "supports_regularization": self.supports_regularization,
        }

    def extra_options(self) -> tuple:
        """Names of the variant-specific keyword options ``run`` accepts.

        Derived from the ``run`` signature, so the front door can tell a
        mistyped config field from a legitimate variant knob without any
        per-variant table.
        """
        parameters = inspect.signature(self.run).parameters
        skip = {"A", "config", "observers"}
        return tuple(
            name
            for name, param in parameters.items()
            if name not in skip and param.default is not inspect.Parameter.empty
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: Dict[str, Variant] = {}


def register_variant(cls):
    """Class decorator adding a variant (as a singleton) to the registry."""
    if not (isinstance(cls, type) and issubclass(cls, Variant)):
        raise TypeError(f"register_variant expects a Variant subclass, got {cls!r}")
    _REGISTRY[cls.name] = cls()
    return cls


def available_variants() -> List[str]:
    """Names accepted by :func:`get_variant` (and by ``repro.fit(variant=...)``).

    >>> available_variants()
    ['hpc1d', 'hpc2d', 'naive', 'regularized', 'sequential', 'streaming', 'symmetric']
    """
    _ensure_builtin_variants()
    return sorted(_REGISTRY)


def get_variant(name: str) -> Variant:
    """Look up a registered variant by name.

    >>> get_variant("hpc2d").parallelizable
    True
    >>> get_variant("symmetric").symmetric_input
    True
    """
    _ensure_builtin_variants()
    try:
        return _REGISTRY[str(name).lower()]
    except KeyError:
        raise KeyError(
            f"unknown variant {name!r}; available variants: {sorted(_REGISTRY)}"
        ) from None


def _ensure_builtin_variants() -> None:
    """Import the built-in variant modules so they self-register."""
    # Deferred so `import repro.core.variants.base` alone stays cycle-free.
    from repro.core.variants import (  # noqa: F401
        parallel,
        regularized,
        sequential,
        streaming,
        symmetric,
    )
