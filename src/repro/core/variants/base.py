"""The :class:`Variant` descriptor and the variant registry.

A *variant* is one NMF flavor behind the :func:`repro.fit` front door:
Algorithm 1 (``sequential``), Algorithm 2 (``naive``), Algorithm 3 on a 1D or
2D grid (``hpc1d`` / ``hpc2d``), and the paper-motivated extensions
(``symmetric``, ``regularized``, ``streaming``).  The registry mirrors the
solver registry (:mod:`repro.nls.base`) and the backend registry
(:mod:`repro.comm.backends`): adding a variant is one registered module —
no dispatch table anywhere else needs editing, and the CLI's ``--variant``
choices and ``repro variants`` listing update themselves.

Each variant declares **capability flags** the front door enforces or
surfaces:

``parallelizable``
    Runs as an SPMD program on ``config.n_ranks`` ranks of an execution
    backend; non-parallelizable variants reject ``n_ranks > 1``.
``sparse_ok``
    Accepts ``scipy.sparse`` input.
``symmetric_input``
    Interprets the input as a square similarity/adjacency matrix (and adapts
    rectangular input rather than factorizing it directly).
``supports_regularization``
    Accepts factor-regularization options (ridge / L1).

and implements one uniform entry point::

    run(A, config, observers=(), **variant_options) -> NMFResult

Variants that the analytic model of §4.3/§5 covers additionally implement
the **cost hooks** the planning layer (:mod:`repro.plan`) consumes —
``predicted_breakdown(problem, p, grid, machine)``,
``predicted_words(problem, p, grid)`` and ``candidate_grids(problem, p)``
— so analysis dispatches through the same registry as execution (no
duplicate variant taxonomy in :mod:`repro.perf.model`).
"""

from __future__ import annotations

import abc
import inspect
from typing import Dict, List, Optional, Sequence

from repro.core.config import NMFConfig
from repro.core.observers import IterationObserver
from repro.core.result import NMFResult


class Variant(abc.ABC):
    """Descriptor + entry point of one registered NMF flavor."""

    #: registry name; subclasses override
    name: str = "abstract"
    #: one-line description shown by ``repro variants``
    summary: str = ""
    #: the NMFResult (sub)class this variant produces; NMFResult.load() uses
    #: it to round-trip saved results without per-variant special cases.
    result_class = NMFResult
    # capability flags
    parallelizable: bool = False
    sparse_ok: bool = True
    symmetric_input: bool = False
    supports_regularization: bool = False

    @abc.abstractmethod
    def run(
        self,
        A,
        config: NMFConfig,
        observers: Optional[Sequence[IterationObserver]] = (),
        **options,
    ) -> NMFResult:
        """Execute this variant on ``A`` under ``config``.

        ``observers`` follow the protocol of :mod:`repro.core.observers`;
        ``options`` are this variant's extra knobs (see
        :meth:`extra_options`).  Returns a provenance-stamped
        :class:`~repro.core.result.NMFResult`.
        """

    @property
    def label(self) -> str:
        """Display label used by reports and plan tables (default: the name).

        Subclasses override with a plain class attribute (e.g.
        ``label = "HPC-NMF-2D"`` to match the paper's figure legends).
        """
        return self.name

    # -- analytic cost hooks (the planning layer's interface) ---------------
    def predicted_breakdown(self, problem, p: int, grid=None, machine=None):
        """Modeled per-iteration :class:`~repro.comm.profiler.TimeBreakdown`.

        ``problem`` is a :class:`~repro.plan.problem.ProblemSpec`; ``grid``
        is a ``(pr, pc)`` tuple for grid-using variants (``None`` applies
        the variant's own default); ``machine`` a
        :class:`~repro.perf.machine.MachineSpec` (``None`` = Edison).
        Returns ``None`` when the variant has no analytic model — the
        planner then skips it.
        """
        return None

    def predicted_words(self, problem, p: int, grid=None) -> Optional[float]:
        """Modeled per-iteration communication volume in words (or ``None``)."""
        return None

    def candidate_grids(self, problem, p: int):
        """Grid candidates the planner should score for this variant.

        Grid-free variants return ``(None,)`` (one candidate, no grid);
        ``hpc2d`` returns every ``pr × pc`` factorization of ``p``.
        """
        return (None,)

    def capabilities(self) -> Dict[str, bool]:
        """The four capability flags as a dict (used by the CLI listing)."""
        return {
            "parallelizable": self.parallelizable,
            "sparse_ok": self.sparse_ok,
            "symmetric_input": self.symmetric_input,
            "supports_regularization": self.supports_regularization,
        }

    def extra_options(self) -> tuple:
        """Names of the variant-specific keyword options ``run`` accepts.

        Derived from the ``run`` signature, so the front door can tell a
        mistyped config field from a legitimate variant knob without any
        per-variant table.
        """
        parameters = inspect.signature(self.run).parameters
        skip = {"A", "config", "observers"}
        return tuple(
            name
            for name, param in parameters.items()
            if name not in skip and param.default is not inspect.Parameter.empty
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


_REGISTRY: Dict[str, Variant] = {}


def variant_name(variant) -> str:
    """Normalise a variant selector to its lower-case registry name.

    Accepts a registry name string or anything with a ``.value`` (the
    deprecated ``AlgorithmVariant`` enum members) — the one coercion every
    layer (front door, planner, experiment harness) shares.
    """
    return str(getattr(variant, "value", variant)).lower()


def register_variant(cls):
    """Class decorator adding a variant (as a singleton) to the registry."""
    if not (isinstance(cls, type) and issubclass(cls, Variant)):
        raise TypeError(f"register_variant expects a Variant subclass, got {cls!r}")
    _REGISTRY[cls.name] = cls()
    return cls


def available_variants() -> List[str]:
    """Names accepted by :func:`get_variant` (and by ``repro.fit(variant=...)``).

    >>> available_variants()
    ['hpc1d', 'hpc2d', 'naive', 'regularized', 'sequential', 'streaming', 'symmetric']
    """
    _ensure_builtin_variants()
    return sorted(_REGISTRY)


def get_variant(name: str) -> Variant:
    """Look up a registered variant by name.

    >>> get_variant("hpc2d").parallelizable
    True
    >>> get_variant("symmetric").symmetric_input
    True
    """
    _ensure_builtin_variants()
    try:
        return _REGISTRY[variant_name(name)]
    except KeyError:
        raise KeyError(
            f"unknown variant {name!r}; available variants: {sorted(_REGISTRY)}"
        ) from None


def _ensure_builtin_variants() -> None:
    """Import the built-in variant modules so they self-register."""
    # Deferred so `import repro.core.variants.base` alone stays cycle-free.
    from repro.core.variants import (  # noqa: F401
        parallel,
        regularized,
        sequential,
        streaming,
        symmetric,
    )
