"""The per-iteration observer protocol shared by every NMF variant.

Every variant's outer loop — sequential (Algorithm 1, regularized, symmetric,
streaming) and SPMD (Algorithms 2 and 3) — reports each iteration to a list
of :class:`IterationObserver` objects and honours their stop requests.  That
makes the cross-cutting concerns that used to be per-variant ad-hoc code
(history recording, tolerance-based early stopping, wall-clock budgets,
checkpointing, live progress) *composable*: pass any mix of the built-in
observers below, or any object with the same three methods, to
:func:`repro.fit`.

Dispatch rules
--------------
* Sequential loops call every observer directly, once per outer iteration.
* SPMD loops call observers on **rank 0 only** (events carry the replicated
  objective/relative-error values, which are identical on every rank by
  construction).  When at least one observer is present, the per-iteration
  stop decision is agreed between the ranks with one extra scalar all-reduce
  so that an observer's stop request — which only rank 0 sees — cannot leave
  the other ranks blocked in a collective.  With no observers the loop's
  communication is exactly the paper's (no extra collectives), which the
  communication-volume tests pin down.
* An observer requests a stop by returning a truthy value from
  ``on_iteration``; the loop finishes the current iteration and exits.

:class:`LoopControl` is the internal helper that implements these rules plus
the bookkeeping every variant shares (history recording and ``config.tol``
convergence); variants call ``record(...)`` once per iteration instead of
hand-rolling the same block.
"""

from __future__ import annotations

import math
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import NMFConfig
from repro.core.result import IterationStats, NMFResult


@dataclass
class IterationEvent:
    """What a variant's outer loop reports after each iteration.

    ``objective`` / ``relative_error`` are NaN when the run has error
    computation disabled (``compute_error=False``) or the variant does not
    define that metric.  ``W`` / ``H`` are the current *global* factors when
    the variant has them in one place (sequential variants); SPMD loops pass
    ``None`` — each rank only owns a block.
    """

    iteration: int
    variant: str
    objective: float = float("nan")
    relative_error: float = float("nan")
    seconds: float = 0.0
    k: int = 0
    n_ranks: int = 1
    W: Optional[np.ndarray] = None
    H: Optional[np.ndarray] = None

    @property
    def has_error(self) -> bool:
        """True when this event carries a real relative-error measurement."""
        return not math.isnan(self.relative_error)

    @property
    def has_factors(self) -> bool:
        """True when the event carries the current global factors."""
        return self.W is not None and self.H is not None


class IterationObserver:
    """Base class *and* protocol of the observer interface.

    Subclassing is optional — any object providing these three methods (all
    optional behaviourally; the base versions are no-ops) can be passed to
    :func:`repro.fit`:

    * ``on_start(config, variant)`` — once, before the first iteration;
    * ``on_iteration(event) -> bool | None`` — once per outer iteration;
      returning a truthy value asks the loop to stop after this iteration;
    * ``on_finish(result)`` — once, with the assembled
      :class:`~repro.core.result.NMFResult` (called on the driver, after
      SPMD assembly).
    """

    def on_start(self, config: NMFConfig, variant: str) -> None:  # pragma: no cover - trivial
        pass

    def on_iteration(self, event: IterationEvent) -> Optional[bool]:
        return None

    def on_finish(self, result: NMFResult) -> None:  # pragma: no cover - trivial
        pass


# ---------------------------------------------------------------------------
# built-in observers
# ---------------------------------------------------------------------------

class HistoryRecorder(IterationObserver):
    """Collects one :class:`IterationStats` per observed iteration.

    The loops record their own result history internally; this observer is
    for *watching* a run live (or capturing history from variants/configs
    that do not keep it, e.g. ``compute_error=False`` runs, where the stats
    carry NaN errors but real timings).  Reusable: each new run resets the
    recording, so after ``NMF(...).fit(A).fit(B)`` it holds B's history.
    """

    def __init__(self) -> None:
        self.history: List[IterationStats] = []

    def on_start(self, config: NMFConfig, variant: str) -> None:
        self.history = []

    def on_iteration(self, event: IterationEvent) -> None:
        self.history.append(
            IterationStats(
                iteration=event.iteration,
                objective=event.objective,
                relative_error=event.relative_error,
                seconds=event.seconds,
            )
        )

    @property
    def relative_errors(self) -> List[float]:
        return [s.relative_error for s in self.history]


class ToleranceStop(IterationObserver):
    """Stop when the relative-error improvement drops below ``tol``.

    Composable alternative to ``config.tol`` — useful to impose a tolerance
    on a config that runs with ``tol=0`` (the paper's fixed-iteration-count
    protocol) without touching the config.
    """

    def __init__(self, tol: float) -> None:
        if tol <= 0:
            raise ValueError(f"tol must be > 0, got {tol}")
        self.tol = float(tol)
        self._previous = math.inf
        self.triggered_at: Optional[int] = None

    def on_start(self, config: NMFConfig, variant: str) -> None:
        # Reset so one instance can watch several runs (the NMF estimator
        # passes the same observer objects to every fit call).
        self._previous = math.inf
        self.triggered_at = None

    def on_iteration(self, event: IterationEvent) -> bool:
        if not event.has_error:
            return False
        if self._previous - event.relative_error < self.tol:
            self.triggered_at = event.iteration
            return True
        self._previous = event.relative_error
        return False


class WallClockBudget(IterationObserver):
    """Stop once the run has consumed ``seconds`` of wall-clock time.

    The budget is checked after each iteration, so a run always completes at
    least one iteration.  On SPMD runs the clock is rank 0's; the stop
    decision reaches the other ranks through the observer stop all-reduce.
    """

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"budget must be >= 0 seconds, got {seconds}")
        self.seconds = float(seconds)
        self._started: Optional[float] = None
        self.triggered_at: Optional[int] = None

    def on_start(self, config: NMFConfig, variant: str) -> None:
        self._started = time.perf_counter()
        self.triggered_at = None

    def on_iteration(self, event: IterationEvent) -> bool:
        if self._started is None:  # on_start skipped: budget counts from first event
            self._started = time.perf_counter()
        if time.perf_counter() - self._started >= self.seconds:
            self.triggered_at = event.iteration
            return True
        return False


class CheckpointEvery(IterationObserver):
    """Write an ``.npz`` checkpoint every ``every`` iterations.

    ``path_template`` is formatted with ``{iteration}``.  When the event
    carries global factors (sequential variants) they are stored; SPMD events
    carry none, so the checkpoint holds the scalar progress metrics only.
    ``paths`` lists everything written, newest last.
    """

    def __init__(self, every: int, path_template: Union[str, Path]) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = int(every)
        self.path_template = str(path_template)
        self.paths: List[Path] = []

    def on_iteration(self, event: IterationEvent) -> None:
        if (event.iteration + 1) % self.every != 0:
            return
        path = Path(self.path_template.format(iteration=event.iteration))
        arrays = {
            "iteration": np.asarray(event.iteration),
            "objective": np.asarray(event.objective),
            "relative_error": np.asarray(event.relative_error),
        }
        if event.has_factors:
            arrays["W"] = event.W
            arrays["H"] = event.H
        np.savez(path, **arrays)
        self.paths.append(path if path.suffix == ".npz" else path.with_name(path.name + ".npz"))


class ProgressPrinter(IterationObserver):
    """Print one status line every ``every`` iterations (live telemetry)."""

    def __init__(self, every: int = 1, stream=None) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = int(every)
        self.stream = stream

    def _out(self):
        return self.stream if self.stream is not None else sys.stderr

    def on_start(self, config: NMFConfig, variant: str) -> None:
        print(f"[{variant}] k={config.k}, max_iters={config.max_iters}", file=self._out())

    def on_iteration(self, event: IterationEvent) -> None:
        if (event.iteration + 1) % self.every != 0:
            return
        error = f"rel_err={event.relative_error:.6f}" if event.has_error else "rel_err=n/a"
        print(
            f"[{event.variant}] iter {event.iteration:>4}  {error}  "
            f"({event.seconds:.3f}s)",
            file=self._out(),
        )


class CallbackObserver(IterationObserver):
    """Adapts a plain ``callback(iteration, relative_error)`` to the protocol.

    Backward-compatibility shim for :func:`repro.core.anls.anls_nmf`'s old
    ``callback`` argument; fires only on iterations that measured an error,
    exactly as the old inline call did.
    """

    def __init__(self, fn: Callable[[int, float], None]) -> None:
        self.fn = fn

    def on_iteration(self, event: IterationEvent) -> None:
        if event.has_error:
            self.fn(event.iteration, event.relative_error)


# ---------------------------------------------------------------------------
# the shared loop-control helper
# ---------------------------------------------------------------------------

class LoopControl:
    """Shared outer-loop bookkeeping: history, tol stopping, observer dispatch.

    One instance drives one variant run (on SPMD runs: one instance per rank,
    created inside the per-rank program).  ``record`` is called once per
    outer iteration and returns True when the loop should stop — either
    because the ``config.tol`` convergence criterion fired (a replicated,
    deterministic decision, identical on every rank) or because an observer
    requested it (a rank-0 decision, shared with the other ranks through one
    scalar all-reduce — only performed when observers are present, so
    observer-free runs keep exactly the paper's communication volume).
    """

    def __init__(
        self,
        config: NMFConfig,
        observers: Optional[Sequence[IterationObserver]] = None,
        *,
        comm=None,
        variant: str = "sequential",
    ):
        self.config = config
        self.history: List[IterationStats] = []
        self.converged = False
        self.iterations = 0
        self.variant = variant
        self._observers = tuple(observers or ())
        self._comm = comm
        self._root = comm is None or comm.rank == 0
        self._n_ranks = comm.size if comm is not None else 1
        self._previous = math.inf

    def start(self) -> "LoopControl":
        if self._root:
            for observer in self._observers:
                observer.on_start(self.config, self.variant)
        return self

    def record(
        self,
        iteration: int,
        *,
        objective: float = float("nan"),
        relative_error: float = float("nan"),
        seconds: float = 0.0,
        factors: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> bool:
        """Log one finished iteration; returns True when the loop should stop."""
        self.iterations = iteration + 1
        stop = False
        measured = not (math.isnan(objective) and math.isnan(relative_error))
        if measured:
            self.history.append(
                IterationStats(
                    iteration=iteration,
                    objective=objective,
                    relative_error=relative_error,
                    seconds=seconds,
                )
            )
            if not math.isnan(relative_error):
                if self.config.tol > 0 and self._previous - relative_error < self.config.tol:
                    self.converged = True
                    stop = True
                self._previous = relative_error
        if self._observers:
            requested = False
            if self._root:
                event = IterationEvent(
                    iteration=iteration,
                    variant=self.variant,
                    objective=objective,
                    relative_error=relative_error,
                    seconds=seconds,
                    k=self.config.k,
                    n_ranks=self._n_ranks,
                    W=factors[0] if factors is not None else None,
                    H=factors[1] if factors is not None else None,
                )
                for observer in self._observers:
                    if observer.on_iteration(event):
                        requested = True
            if self._comm is not None:
                # Rank 0 contributes the observer votes; the tol decision is
                # already replicated.  SUM > 0 means someone asked to stop.
                stop = self._comm.allreduce_scalar(1.0 if (stop or requested) else 0.0) > 0.0
            else:
                stop = stop or requested
        return stop

    def finish(self, result: NMFResult) -> NMFResult:
        """Notify observers that the run produced ``result`` (driver side)."""
        if self._root:
            for observer in self._observers:
                observer.on_finish(result)
        return result


def notify_finish(
    observers: Optional[Sequence[IterationObserver]], result: NMFResult
) -> NMFResult:
    """Driver-side ``on_finish`` dispatch for SPMD variants.

    The per-rank :class:`LoopControl` objects die with their ranks before the
    global result exists, so the variant layer calls this after assembling
    the per-rank blocks into one :class:`~repro.core.result.NMFResult`.
    """
    for observer in observers or ():
        observer.on_finish(result)
    return result
