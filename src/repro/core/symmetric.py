"""Symmetric NMF for graph clustering (the Kuang–Ding–Park formulation).

The paper's Webbase experiment motivates NMF on graph adjacency matrices for
cluster discovery and cites "Symmetric nonnegative matrix factorization for
graph clustering" (its reference [13]).  For an (approximately) symmetric
similarity matrix ``S`` the natural model is

    min_{G >= 0}  ‖S − G Gᵀ‖_F²,       G ∈ R^{n×k}_+,

whose columns act as soft cluster indicators.  A simple and robust way to
compute it — and the one implemented here — is the penalized ANLS relaxation:
factorize ``S ≈ W H`` with the extra penalty ``α ‖W − Hᵀ‖_F²`` that pulls the
two factors together, then return their symmetrized average.  Each subproblem
remains an NLS problem in normal-equations form:

    W-step:  gram = H Hᵀ + α I,   rhs = (S Hᵀ + α Hᵀ)ᵀ
    H-step:  gram = Wᵀ W + α I,   rhs = Wᵀ S + α Wᵀ

so the same local solvers (and, unchanged, the same parallel framework) apply.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.config import NMFConfig
from repro.core.local_ops import gram, matmul_a_ht, matmul_wt_a
from repro.core.initialization import init_h_global
from repro.core.objective import frobenius_norm_squared
from repro.core.observers import IterationObserver, LoopControl
from repro.core.result import NMFResult
from repro.util.errors import ShapeError
from repro.util.validation import check_matrix, check_nonnegative, check_rank, is_sparse


@dataclass
class SymNMFResult(NMFResult):
    """Result of a symmetric NMF run: an :class:`NMFResult` with ``H = Gᵀ``.

    The factors satisfy ``W = G`` and ``H = Gᵀ``, so ``reconstruction()`` is
    the symmetric model ``G Gᵀ``; :attr:`G`, :attr:`labels` and
    :meth:`cluster_sizes` expose the clustering view.  The per-iteration
    ``history`` records the penalized objective, so the legacy
    ``objective_history`` accessor keeps working through the base class.
    """

    alpha: float = 0.0

    @property
    def G(self) -> np.ndarray:
        """The ``n × k`` soft cluster indicator matrix (alias of ``W``)."""
        return self.W

    @property
    def labels(self) -> np.ndarray:
        """Hard cluster assignment: the dominant column of G per node."""
        return np.argmax(self.G, axis=1)

    def cluster_sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.G.shape[1])


def symmetric_nmf(
    S,
    k: int,
    *,
    alpha: Optional[float] = None,
    max_iters: int = 50,
    solver: str = "bpp",
    seed: int = 0,
    observers: Optional[Sequence[IterationObserver]] = None,
    config: Optional[NMFConfig] = None,
) -> SymNMFResult:
    """Compute a rank-``k`` symmetric NMF of a similarity/adjacency matrix ``S``.

    Parameters
    ----------
    S:
        Square nonnegative matrix (dense or sparse).  It is symmetrized as
        ``(S + Sᵀ)/2`` — for a directed graph this is the standard
        co-linkage similarity.
    k:
        Number of clusters.
    alpha:
        Symmetry-penalty weight; ``None`` uses ``max(S)²`` (the heuristic from
        the SymNMF literature).
    max_iters, solver, seed:
        As for ordinary NMF.
    observers:
        Iteration observers (see :mod:`repro.core.observers`); events carry
        the penalized objective and the relative residual of ``S ≈ G Gᵀ``.
    config:
        Full :class:`NMFConfig`; when given it supersedes
        ``max_iters``/``solver``/``seed`` and its ``tol``, ``compute_error``
        and ``inner_iters`` fields are honoured too (``fit(variant=
        "symmetric")`` passes the run's config through this path).

    Returns
    -------
    SymNMFResult with the indicator matrix ``G`` and hard cluster labels.
    """
    S = check_matrix(S, "S")
    check_nonnegative(S, "S")
    n1, n2 = S.shape
    if n1 != n2:
        raise ShapeError(f"symmetric NMF needs a square matrix, got {S.shape}")
    check_rank(k, n1, n2)

    # Symmetrize (cheap for both dense and CSR).
    S = (S + S.T) * 0.5

    if alpha is None:
        max_entry = float(S.data.max()) if is_sparse(S) and S.nnz else float(np.max(S)) if not is_sparse(S) else 0.0
        alpha = max(max_entry**2, 1.0)
    if alpha < 0:
        raise ShapeError(f"alpha must be nonnegative, got {alpha}")

    if config is None:
        config = NMFConfig(k=k, max_iters=max_iters, solver=solver, seed=seed)
    elif config.k != k:
        raise ShapeError(
            f"rank mismatch: symmetric_nmf called with k={k} but config.k={config.k}"
        )
    nls = config.make_solver()

    H = init_h_global(k, n1, config.seed)   # k × n
    W = H.T.copy()                           # n × k, start symmetric
    eye = np.eye(k)
    norm_s_sq = frobenius_norm_squared(S)

    control = LoopControl(config, observers, variant="symmetric").start()

    for iteration in range(config.max_iters):
        iter_start = time.perf_counter()

        # W-step: min ||S - W H||² + alpha ||W - Hᵀ||².
        gram_h = gram(H, transpose_first=False) + alpha * eye
        rhs_w = (matmul_a_ht(S, H.T) + alpha * H.T).T          # k × n
        W = nls.solve(gram_h, rhs_w, x0=W.T).T

        # H-step: min ||S - W H||² + alpha ||Hᵀ - W||².
        gram_w = gram(W, transpose_first=True) + alpha * eye
        rhs_h = matmul_wt_a(W, S) + alpha * W.T                 # k × n
        H = nls.solve(gram_w, rhs_h, x0=H)

        G = 0.5 * (W + H.T)
        objective = rel_error = float("nan")
        if config.compute_error:
            residual = _symnmf_objective(S, G)
            asymmetry = float(np.linalg.norm(W - H.T))
            objective = residual + alpha * asymmetry**2
            rel_error = float(np.sqrt(residual / norm_s_sq)) if norm_s_sq > 0 else 0.0
        if control.record(
            iteration,
            objective=objective,
            relative_error=rel_error,
            seconds=time.perf_counter() - iter_start,
            factors=(G, G.T),
        ):
            break

    G = 0.5 * (W + H.T)
    result = SymNMFResult(
        W=np.ascontiguousarray(G),
        H=np.ascontiguousarray(G.T),
        config=config,
        iterations=control.iterations,
        history=control.history,
        converged=control.converged,
        variant="symmetric",
        alpha=alpha,
    )
    return control.finish(result)


def _symnmf_objective(S, G: np.ndarray) -> float:
    """``‖S − G Gᵀ‖_F²`` via the Gram trick (no n×n dense product)."""
    gtg = G.T @ G
    if is_sparse(S):
        coo = S.tocoo()
        cross = float(np.sum(coo.data * np.einsum("ij,ij->i", G[coo.row], G[coo.col])))
        norm_s = float(coo.data @ coo.data)
    else:
        cross = float(np.vdot(S @ G, G))
        norm_s = float(np.vdot(S, S))
    return max(norm_s - 2.0 * cross + float(np.sum(gtg * gtg)), 0.0)
