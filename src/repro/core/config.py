"""Configuration for the NMF algorithms.

A single :class:`NMFConfig` drives the sequential reference, Algorithm 2 and
Algorithm 3, so experiments can hold everything fixed and vary exactly one
knob (algorithm, solver, grid shape, rank), the way the paper's evaluation
does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.util.errors import ShapeError


class Algorithm(str, enum.Enum):
    """Which parallel algorithm to run.

    .. deprecated::
        New code selects algorithms by **variant registry name** through
        :func:`repro.fit` (see :mod:`repro.core.variants`); this enum survives
        for backward compatibility and as the internal grid-selection switch
        of the HPC family (its values coincide with the registry names of the
        Algorithm 1/2/3 variants).
    """

    SEQUENTIAL = "sequential"  # Algorithm 1 (reference)
    NAIVE = "naive"            # Algorithm 2
    HPC_1D = "hpc1d"           # Algorithm 3 with pr = p, pc = 1
    HPC_2D = "hpc2d"           # Algorithm 3 with the §5 grid-selection rule


@dataclass(frozen=True)
class NMFConfig:
    """Options shared by every NMF run.

    Parameters
    ----------
    k:
        Target rank of the factorization (the paper uses 10-50).
    max_iters:
        Number of outer ANLS iterations.
    tol:
        Relative-error improvement threshold for early stopping; ``0`` runs
        exactly ``max_iters`` iterations (the paper's timing experiments fix
        the iteration count).
    solver:
        Local NLS solver name: ``"bpp"`` (default, as in the paper), ``"mu"``,
        ``"hals"`` or ``"pgrad"``.
    seed:
        Seed used to initialise ``H`` (§6.1.3: the same seed is reused across
        algorithms so they perform the same computations).
    algorithm:
        Which variant to run (sequential / naive / hpc1d / hpc2d).
        Deprecated in favour of the variant registry (:func:`repro.fit`);
        kept so existing configs keep working.
    n_ranks:
        Number of SPMD ranks ``p`` for the parallel variants (``1`` runs a
        single-rank SPMD world; sequential variants ignore it).
    grid:
        Explicit ``(pr, pc)`` processor grid for HPC-NMF; ``None`` applies the
        paper's grid-selection rule.
    compute_error:
        Whether to compute the relative objective each iteration (adds one
        small all-reduce, as discussed in §5's communication-optimality
        argument).
    inner_iters:
        Inner sweeps for the iterative solvers (MU/HALS); ignored by BPP.
    backend:
        Execution backend for the parallel algorithms, by registry name:
        ``"thread"`` (default; one thread per rank, real overlap where BLAS
        releases the GIL), ``"lockstep"`` (deterministic rank-ordered
        scheduling, scales to hundreds of simulated ranks) or ``"process"``
        (one OS process per rank over shared memory — true parallelism,
        the measured-speedup substrate).  See :mod:`repro.comm.backends`.
        Ignored by the sequential algorithm.
    kernel:
        BPP inner-engine selection, by kernels-registry name: ``"scalar"``
        (default; the reference column loop), ``"batched"`` (vectorized pivot
        rules + stacked Cholesky, byte-identical to scalar), ``"numba"``
        (JIT-compiled, requires numba) or ``"auto"`` (fastest available).
        See :mod:`repro.nls.kernels`.  Ignored by the element-wise solvers.
    overlap:
        Whether the parallel loops run the pipelined schedule (default):
        factor all-gathers and the line-4 Gram all-reduce are issued as
        nonblocking collectives (:meth:`Comm.iallgatherv` /
        :meth:`Comm.iallreduce`) and overlap the opposite half-iteration's
        local compute.  ``False`` restores the strictly blocking Algorithm
        2/3 schedules (the CLI's ``--no-overlap``).  Both schedules produce
        byte-identical factors and identical cost ledgers; the sequential
        algorithm has no collectives and ignores the flag.
    panel_comm:
        Whether the pipelined HPC loops additionally *panel-stream* the
        line-7/line-13 reduce-scatters (default): the line-6/line-12 matmul
        is tiled along the scatter split boundaries and each finished panel
        is issued as a nonblocking ``ireduce_scatter``, so panel ``t``'s
        communication overlaps panel ``t+1``'s GEMM (see
        :mod:`repro.comm.panels`).  ``False`` keeps the PR-7 schedule
        (monolithic blocking reduce-scatters) — the bench baseline times the
        two against each other (``dense:process_panel_vs_pipelined``).  Only
        meaningful when ``overlap`` is on; all schedules stay byte-identical
        in factors and cost ledgers.  The CLI flag is ``--no-panel-comm``.
    storage:
        Where each rank's local block of ``A`` lives (HPC-NMF's 2D layout):
        ``"memory"`` (default) keeps it resident, ``"memmap"`` rehomes dense
        blocks onto ``np.memmap``-backed temporary files so webbase-scale
        matrices stream block-by-block through the never-materialize-``A``
        path (see :mod:`repro.dist.storage`; a no-op for sparse blocks).
        Byte-identical factors either way.  The CLI flag is ``--storage``.
    """

    k: int
    max_iters: int = 30
    tol: float = 0.0
    solver: str = "bpp"
    seed: int = 42
    algorithm: Algorithm = Algorithm.HPC_2D
    n_ranks: int = 1
    grid: Optional[Tuple[int, int]] = None
    compute_error: bool = True
    inner_iters: int = 1
    backend: str = "thread"
    kernel: str = "scalar"
    overlap: bool = True
    panel_comm: bool = True
    storage: str = "memory"

    def __post_init__(self):
        if self.k < 1:
            raise ShapeError(f"rank k must be >= 1, got {self.k}")
        if self.max_iters < 1:
            raise ShapeError(f"max_iters must be >= 1, got {self.max_iters}")
        if self.tol < 0:
            raise ShapeError(f"tol must be >= 0, got {self.tol}")
        if self.inner_iters < 1:
            raise ShapeError(f"inner_iters must be >= 1, got {self.inner_iters}")
        if self.n_ranks < 1:
            raise ShapeError(f"n_ranks must be >= 1, got {self.n_ranks}")
        if not isinstance(self.backend, str) or not self.backend:
            raise ShapeError(
                f"backend must be a backend registry name, got {self.backend!r}"
            )
        if not isinstance(self.kernel, str) or not self.kernel:
            raise ShapeError(
                f"kernel must be a kernels registry name, got {self.kernel!r}"
            )
        if not isinstance(self.overlap, bool):
            raise ShapeError(
                f"overlap must be a bool (pipelined vs blocking schedule), "
                f"got {self.overlap!r}"
            )
        if not isinstance(self.panel_comm, bool):
            raise ShapeError(
                f"panel_comm must be a bool (panel-streamed vs monolithic "
                f"reduce-scatters), got {self.panel_comm!r}"
            )
        from repro.dist.storage import validate_storage

        validate_storage(self.storage)
        # Normalise the algorithm field so strings are accepted.
        object.__setattr__(self, "algorithm", Algorithm(self.algorithm))

    def with_options(self, **kwargs) -> "NMFConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def make_solver(self):
        """Instantiate the configured local NLS solver."""
        from repro.nls import make_solver

        if self.solver in ("mu", "hals"):
            return make_solver(
                self.solver, inner_iters=self.inner_iters, kernel=self.kernel
            )
        return make_solver(self.solver, kernel=self.kernel)
