"""User-facing entry points.

:func:`nmf` runs the sequential reference (Algorithm 1); :func:`parallel_nmf`
runs Algorithm 2 or Algorithm 3 on an SPMD execution backend (``"thread"`` by
default, ``"lockstep"`` for deterministic runs and large simulated grids —
see :mod:`repro.comm.backends`) and assembles the global factors.  Both
accept dense ndarrays or scipy sparse matrices and return an
:class:`~repro.core.result.NMFResult`.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.comm.backends import run_spmd
from repro.core.anls import anls_nmf
from repro.core.config import Algorithm, NMFConfig
from repro.core.hpc_nmf import assemble_hpc_result, hpc_nmf
from repro.core.naive import assemble_naive_result, naive_parallel_nmf
from repro.core.result import NMFResult
from repro.util.errors import ShapeError
from repro.util.validation import check_matrix, check_nonnegative, check_rank


def _build_config(k: int, config: Optional[NMFConfig], **kwargs) -> NMFConfig:
    if config is not None:
        if kwargs:
            config = config.with_options(**kwargs)
        if config.k != k:
            config = config.with_options(k=k)
        return config
    return NMFConfig(k=k, **kwargs)


def nmf(
    A,
    k: int,
    *,
    config: Optional[NMFConfig] = None,
    **options,
) -> NMFResult:
    """Compute a rank-``k`` NMF of ``A`` with the sequential ANLS algorithm.

    Parameters
    ----------
    A:
        Nonnegative ``m × n`` matrix (dense ndarray or scipy sparse).
    k:
        Target rank.
    config:
        Full :class:`NMFConfig`; keyword ``options`` override individual
        fields (``max_iters``, ``tol``, ``solver``, ``seed``, ...).

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> A = rng.random((60, 40)) @ np.eye(40)      # arbitrary nonnegative data
    >>> res = nmf(A, k=5, max_iters=10, seed=1)
    >>> res.W.shape, res.H.shape
    ((60, 5), (5, 40))
    >>> res.relative_error < 1.0
    True
    """
    cfg = _build_config(k, config, **options)
    return anls_nmf(A, cfg)


def parallel_nmf(
    A,
    k: int,
    n_ranks: int,
    *,
    algorithm: Union[str, Algorithm] = Algorithm.HPC_2D,
    grid: Optional[Tuple[int, int]] = None,
    backend: Optional[str] = None,
    config: Optional[NMFConfig] = None,
    **options,
) -> NMFResult:
    """Compute a rank-``k`` NMF with one of the parallel algorithms.

    Runs ``n_ranks`` SPMD ranks on the selected execution backend, each
    owning only its block of ``A`` and of the factors, exactly as the MPI
    implementation in the paper would, then assembles and returns the global
    factors.

    Parameters
    ----------
    A:
        Nonnegative global matrix (each rank slices out its own block).
    k:
        Target rank.
    n_ranks:
        Number of SPMD ranks ``p``.
    algorithm:
        ``"naive"`` (Algorithm 2), ``"hpc1d"`` or ``"hpc2d"`` (Algorithm 3
        with a 1D / auto-selected 2D grid), or ``"sequential"`` to fall back
        to :func:`nmf` (ignoring ``n_ranks``).
    grid:
        Explicit ``(pr, pc)`` grid for the HPC variants (must multiply to
        ``n_ranks``).
    backend:
        Execution backend registry name; overrides ``config.backend``.
        ``"thread"`` (default) runs one thread per rank; ``"lockstep"`` runs
        ranks one at a time in rank order — deterministic and able to
        simulate hundreds of ranks (``parallel_nmf(A, k, 256,
        backend="lockstep")`` never has more than one rank running).

    Examples
    --------
    >>> import numpy as np
    >>> A = np.abs(np.random.default_rng(3).standard_normal((48, 36)))
    >>> res = parallel_nmf(A, k=4, n_ranks=4, algorithm="hpc2d", max_iters=5)
    >>> res.n_ranks, res.grid_shape
    (4, (2, 2))
    """
    A = check_matrix(A, "A")
    check_nonnegative(A, "A")
    m, n = A.shape
    check_rank(k, m, n)
    algorithm = Algorithm(algorithm)

    if n_ranks < 1:
        raise ShapeError(f"n_ranks must be >= 1, got {n_ranks}")

    cfg = _build_config(k, config, **options).with_options(algorithm=algorithm, grid=grid)
    if backend is not None:
        cfg = cfg.with_options(backend=backend)

    if algorithm == Algorithm.SEQUENTIAL:
        return anls_nmf(A, cfg)
    if algorithm == Algorithm.NAIVE:
        per_rank = run_spmd(
            n_ranks, naive_parallel_nmf, A, cfg, name="naive-nmf", backend=cfg.backend
        )
        return assemble_naive_result(per_rank, cfg)
    per_rank = run_spmd(n_ranks, hpc_nmf, A, cfg, name="hpc-nmf", backend=cfg.backend)
    return assemble_hpc_result(per_rank, cfg)
