"""User-facing entry points: the registry-driven front door.

:func:`fit` runs any registered variant — ``sequential`` (Algorithm 1),
``naive`` (Algorithm 2), ``hpc1d``/``hpc2d`` (Algorithm 3), ``symmetric``,
``regularized``, ``streaming`` — through one code path: resolve the variant
in the registry (:mod:`repro.core.variants`), build the
:class:`~repro.core.config.NMFConfig`, enforce the variant's capability
flags, and hand off to its uniform ``run(A, config, observers)`` entry
point.  :class:`NMF` is the estimator-style spelling of the same thing.

The pre-registry entry points :func:`nmf` and :func:`parallel_nmf` survive
as thin deprecation shims over :func:`fit`.

Examples
--------
>>> import numpy as np
>>> rng = np.random.default_rng(0)
>>> A = rng.random((60, 40))
>>> res = fit(A, 5, max_iters=10, seed=1)          # sequential by default
>>> res.variant, res.W.shape, res.H.shape
('sequential', (60, 5), (5, 40))
>>> par = fit(A, 5, n_ranks=4, max_iters=5, seed=1)  # n_ranks > 1 -> hpc2d
>>> par.variant, par.n_ranks, par.grid_shape
('hpc2d', 4, (2, 2))
>>> np.allclose(res.W, fit(A, 5, variant="sequential", max_iters=10, seed=1).W)
True
"""

from __future__ import annotations

import warnings
from dataclasses import fields as dataclass_fields
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.config import Algorithm, NMFConfig
from repro.core.observers import IterationObserver
from repro.core.result import NMFResult
from repro.core.variants import available_variants, get_variant, variant_name
from repro.util.errors import ShapeError
from repro.util.validation import is_sparse

_CONFIG_FIELDS = frozenset(f.name for f in dataclass_fields(NMFConfig))


def _build_config(k: Optional[int], config: Optional[NMFConfig], **kwargs) -> NMFConfig:
    """Combine the positional rank, an optional base config and field overrides.

    A positional ``k`` that disagrees with ``config.k`` is a contradiction we
    refuse to guess about (the old behaviour silently preferred ``k``).
    """
    if config is not None:
        if kwargs:
            config = config.with_options(**kwargs)
        if k is not None and config.k != k:
            raise ShapeError(
                f"rank mismatch: called with k={k} but config.k={config.k}; "
                "pass matching values or omit one of them"
            )
        return config
    if k is None:
        raise ShapeError("a target rank is required: pass k or a config with k set")
    return NMFConfig(k=k, **kwargs)


def fit(
    A,
    k: Optional[int] = None,
    *,
    variant: Optional[str] = None,
    n_ranks: Optional[int] = None,
    grid: Union[str, Tuple[int, int], None] = None,
    backend: Optional[str] = None,
    config: Optional[NMFConfig] = None,
    observers: Sequence[IterationObserver] = (),
    machine=None,
    **options,
) -> NMFResult:
    """Compute a rank-``k`` NMF of ``A`` with any registered variant.

    This is the front door to every NMF flavor in the package: the paper's
    Algorithm 1/2/3 family and the extension variants all run through this
    one code path, differing only in the ``variant`` registry name.

    Parameters
    ----------
    A:
        Nonnegative ``m × n`` matrix (dense ndarray or scipy sparse; sparse
        input requires a variant with the ``sparse_ok`` capability).
    k:
        Target rank.  May be omitted when ``config`` carries it; a ``k`` that
        contradicts ``config.k`` raises :class:`~repro.util.errors.ShapeError`.
    variant:
        Registry name (see :func:`repro.core.variants.available_variants`),
        or ``"auto"`` to let the planner (:mod:`repro.plan`) pick the
        cost-model argmin over every modeled variant (§5's selection rule).
        Default: ``"sequential"``, or ``"hpc2d"`` when ``n_ranks > 1``.
    n_ranks:
        Number of SPMD ranks for parallelizable variants (stored as
        ``config.n_ranks``).  Sequential-only variants reject ``n_ranks > 1``
        — no silent fallback.
    grid:
        Explicit ``(pr, pc)`` processor grid for the HPC variants, or
        ``"auto"`` to have the planner score **all** factorizations of ``p``
        and run the cheapest.
    backend:
        Execution backend registry name (``"thread"``, ``"lockstep"``,
        ``"process"``, ...); overrides ``config.backend``.  ``"process"``
        runs one OS process per rank — the only backend that escapes the
        GIL, hence the one that shows real speedups.  Unknown names raise
        immediately with the registry's suggestion list.  Ignored by
        sequential-only variants.
    config:
        Full :class:`NMFConfig`; keyword ``options`` override single fields.
    observers:
        :class:`~repro.core.observers.IterationObserver` objects notified
        after every outer iteration of the variant's loop; any observer can
        request an early stop.
    machine:
        :class:`~repro.perf.machine.MachineSpec` the planner prices
        candidates against when ``variant``/``grid`` is ``"auto"``.
        Default: the deterministic Edison constants; pass
        ``MachineSpec.calibrate()`` to plan for the actual host.
    **options:
        Remaining keywords are split by name: :class:`NMFConfig` fields
        (``max_iters``, ``tol``, ``solver``, ``seed``, ``kernel``, ...)
        configure the run — ``kernel="auto"`` selects the fastest available
        BPP inner engine (see :mod:`repro.nls.kernels`) and is also priced
        by the planner when ``variant``/``grid`` is ``"auto"``; anything
        else must be an extra option of the chosen variant
        (e.g. ``alpha`` for ``symmetric``, ``l1`` for ``regularized``,
        ``window`` for ``streaming``).

    When the planner ran, the chosen :class:`~repro.plan.planner.
    ExecutionPlan` (variant, grid, predicted per-iteration breakdown and
    words moved) is recorded on the result as ``result.plan``.

    Examples
    --------
    >>> import numpy as np
    >>> A = np.abs(np.random.default_rng(3).standard_normal((48, 36)))
    >>> res = fit(A, 4, variant="naive", n_ranks=3, max_iters=5)
    >>> res.variant, res.n_ranks, res.backend
    ('naive', 3, 'thread')
    >>> fit(A, 4, variant="regularized", l1=0.5, max_iters=5).variant
    'regularized'

    ``variant="auto"`` consults the cost model; on a tall-skinny matrix the
    §5 rule lands in the 1D regime (``pr = p, pc = 1``):

    >>> tall = np.abs(np.random.default_rng(1).standard_normal((320, 12)))
    >>> auto = fit(tall, 3, variant="auto", grid="auto", n_ranks=4, max_iters=2)
    >>> auto.variant, auto.plan.grid, auto.grid_shape
    ('hpc2d', (4, 1), (4, 1))
    """
    if isinstance(backend, str):
        # Fail fast, before any planning or data movement, with the backend
        # registry's suggestion list ("did you mean 'process'?").
        from repro.comm.backends import get_backend_class

        get_backend_class(backend)

    config_options = {key: val for key, val in options.items() if key in _CONFIG_FIELDS}
    extras = {key: val for key, val in options.items() if key not in _CONFIG_FIELDS}

    # ``algorithm=`` is the legacy spelling of ``variant=`` (and an NMFConfig
    # field, so it would otherwise slip through the unknown-option check and
    # be silently overwritten by the chosen variant).  Honour it, loudly.
    legacy_algorithm = config_options.pop("algorithm", None)
    if legacy_algorithm is not None:
        warnings.warn(
            "fit(algorithm=...) is deprecated; pass variant=... instead",
            DeprecationWarning,
            stacklevel=2,
        )
        legacy_name = getattr(legacy_algorithm, "value", legacy_algorithm)
        if variant is None:
            variant = legacy_name
        elif getattr(variant, "value", variant) != legacy_name:
            raise TypeError(
                f"conflicting selections: variant={variant!r} vs "
                f"algorithm={legacy_name!r}; pass variant= only"
            )

    if variant is None:
        ranks = n_ranks
        if ranks is None:
            ranks = config.n_ranks if config is not None else 1
        variant = "hpc2d" if ranks > 1 else "sequential"

    auto_variant = isinstance(variant, str) and variant.lower() == "auto"
    auto_grid = isinstance(grid, str)
    if auto_grid and grid.lower() != "auto":
        raise TypeError(f"grid must be a (pr, pc) tuple or 'auto', got {grid!r}")

    plan = None
    if auto_variant or auto_grid:
        from repro.plan import ProblemSpec, make_plan

        eff_k = k if k is not None else (config.k if config is not None else None)
        if eff_k is None:
            raise ShapeError("a target rank is required: pass k or a config with k set")
        ranks = n_ranks if n_ranks is not None else (
            config.n_ranks if config is not None else 1
        )
        plan = make_plan(
            ProblemSpec.from_matrix(A, eff_k),
            ranks,
            machine=machine,
            variants=None if auto_variant else [variant_name(variant)],
            grid=None if auto_grid else grid,
            backend=backend or (config.backend if config is not None else None),
            solver=config_options.get(
                "solver", config.solver if config is not None else "bpp"
            ),
            kernel=config_options.get(
                "kernel", config.kernel if config is not None else None
            ),
        )
        variant = plan.variant
        if auto_grid:
            grid = plan.grid  # None for grid-free variants (sequential, naive)

    variant_obj = get_variant(variant_name(variant))

    unknown = sorted(set(extras) - set(variant_obj.extra_options()))
    if unknown:
        accepted = sorted(variant_obj.extra_options())
        raise TypeError(
            f"variant {variant_obj.name!r} does not accept option(s) {unknown}; "
            f"beyond the NMFConfig fields it accepts {accepted or 'no extra options'}"
        )

    cfg = _build_config(k, config, **config_options)
    if n_ranks is not None:
        cfg = cfg.with_options(n_ranks=n_ranks)
    if grid is not None:
        cfg = cfg.with_options(grid=grid)
    if backend is not None:
        cfg = cfg.with_options(backend=backend)

    if cfg.n_ranks > 1 and not variant_obj.parallelizable:
        parallel = [v for v in available_variants() if get_variant(v).parallelizable]
        raise ShapeError(
            f"variant {variant_obj.name!r} is sequential-only and cannot run on "
            f"n_ranks={cfg.n_ranks}; parallelizable variants: {parallel}"
        )
    if is_sparse(A) and not variant_obj.sparse_ok:
        raise ShapeError(
            f"variant {variant_obj.name!r} does not accept scipy sparse input"
        )

    result = variant_obj.run(A, cfg, observers=observers, **extras)
    if plan is not None:
        result.plan = plan
    return result


class NMF:
    """Estimator-style front door: configure once, fit many matrices.

    Mirrors the scikit-learn convention: ``fit`` stores the fitted factors
    on the instance (``W_``, ``H_``, full ``result_``) and returns ``self``;
    ``fit_transform`` returns ``W``; ``transform`` projects *new* data onto
    the fitted basis with one NLS solve.

    Examples
    --------
    >>> import numpy as np
    >>> A = np.abs(np.random.default_rng(0).standard_normal((30, 20)))
    >>> model = NMF(k=4, variant="sequential", max_iters=5, seed=0).fit(A)
    >>> model.W_.shape, model.components_.shape
    ((30, 4), (4, 20))
    >>> model.result_.variant
    'sequential'
    """

    def __init__(
        self,
        k: Optional[int] = None,
        *,
        variant: Optional[str] = None,
        n_ranks: Optional[int] = None,
        grid: Union[str, Tuple[int, int], None] = None,
        backend: Optional[str] = None,
        config: Optional[NMFConfig] = None,
        observers: Sequence[IterationObserver] = (),
        **options,
    ):
        self.k = k
        self.variant = variant
        self.n_ranks = n_ranks
        self.grid = grid
        self.backend = backend
        self.config = config
        self.observers = tuple(observers)
        self.options = dict(options)
        self.result_: Optional[NMFResult] = None

    def fit(self, A, observers: Sequence[IterationObserver] = ()) -> "NMF":
        """Factorize ``A``; stores ``result_``/``W_``/``H_`` and returns ``self``."""
        self.result_ = fit(
            A,
            self.k,
            variant=self.variant,
            n_ranks=self.n_ranks,
            grid=self.grid,
            backend=self.backend,
            config=self.config,
            observers=(*self.observers, *observers),
            **self.options,
        )
        return self

    def fit_transform(self, A) -> np.ndarray:
        """Factorize ``A`` and return the left factor ``W``."""
        return self.fit(A).W_

    def transform(self, A) -> np.ndarray:
        """Coefficients of (possibly new) columns under the fitted basis ``W_``.

        Solves ``min_{H >= 0} ||A - W_ H||`` with the configured NLS solver;
        ``A`` must have the same number of rows the model was fitted on.
        """
        result = self._fitted()
        W = result.W
        if A.shape[0] != W.shape[0]:
            raise ShapeError(
                f"transform expects {W.shape[0]} rows (the fitted basis), got {A.shape[0]}"
            )
        solver = result.config.make_solver()
        gram_w = W.T @ W
        rhs = W.T @ A
        rhs = np.asarray(rhs)  # sparse A yields a matrix; solvers want ndarray
        return solver.solve(gram_w, rhs)

    @property
    def W_(self) -> np.ndarray:
        return self._fitted().W

    @property
    def H_(self) -> np.ndarray:
        return self._fitted().H

    @property
    def components_(self) -> np.ndarray:
        """The right factor ``H`` under its scikit-learn name."""
        return self._fitted().H

    def _fitted(self) -> NMFResult:
        if self.result_ is None:
            raise ShapeError("this NMF instance is not fitted yet; call fit(A) first")
        return self.result_

    def __repr__(self) -> str:
        # An unset variant means "library default" (sequential/hpc2d by rank
        # count), which is distinct from variant="auto" (planner mode).
        variant = self.variant if self.variant is not None else "default"
        return f"NMF(k={self.k}, variant={variant!r})"


# ---------------------------------------------------------------------------
# deprecation shims (the pre-registry entry points)
# ---------------------------------------------------------------------------

def nmf(
    A,
    k: int,
    *,
    config: Optional[NMFConfig] = None,
    **options,
) -> NMFResult:
    """Sequential rank-``k`` NMF of ``A`` (Algorithm 1).

    .. deprecated::
        Thin shim over ``fit(A, k, variant="sequential", ...)``; prefer
        :func:`fit`.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> A = rng.random((60, 40)) @ np.eye(40)      # arbitrary nonnegative data
    >>> res = nmf(A, k=5, max_iters=10, seed=1)
    >>> res.W.shape, res.H.shape
    ((60, 5), (5, 40))
    >>> res.relative_error < 1.0
    True
    """
    warnings.warn(
        "nmf() is deprecated; use repro.fit(A, k) (variant='sequential' is the default)",
        DeprecationWarning,
        stacklevel=2,
    )
    return fit(A, k, variant="sequential", config=config, **options)


def parallel_nmf(
    A,
    k: int,
    n_ranks: int,
    *,
    algorithm: Union[str, Algorithm] = Algorithm.HPC_2D,
    grid: Optional[Tuple[int, int]] = None,
    backend: Optional[str] = None,
    config: Optional[NMFConfig] = None,
    **options,
) -> NMFResult:
    """Rank-``k`` NMF with one of the parallel algorithms.

    .. deprecated::
        Thin shim over ``fit(A, k, variant=..., n_ranks=...)``; prefer
        :func:`fit`.  The ``algorithm`` names coincide with the variant
        registry names, and the legacy quirk of silently ignoring
        ``n_ranks`` for ``algorithm="sequential"`` is preserved here —
        :func:`fit` itself rejects that combination.

    Examples
    --------
    >>> import numpy as np
    >>> A = np.abs(np.random.default_rng(3).standard_normal((48, 36)))
    >>> res = parallel_nmf(A, k=4, n_ranks=4, algorithm="hpc2d", max_iters=5)
    >>> res.n_ranks, res.grid_shape
    (4, (2, 2))
    """
    warnings.warn(
        "parallel_nmf() is deprecated; use repro.fit(A, k, variant=..., n_ranks=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    if n_ranks < 1:
        raise ShapeError(f"n_ranks must be >= 1, got {n_ranks}")
    name = Algorithm(algorithm).value
    if name == Algorithm.SEQUENTIAL.value:
        return fit(A, k, variant="sequential", config=config, **options)
    return fit(
        A,
        k,
        variant=name,
        n_ranks=n_ranks,
        grid=grid,
        backend=backend,
        config=config,
        **options,
    )
