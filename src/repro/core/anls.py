"""Algorithm 1: the sequential ANLS framework (correctness reference).

The parallel algorithms are validated against this implementation: with the
same seed and the same local solver they must produce the same factors up to
floating-point reordering.

The W-subproblem ``min_{W>=0} ||A − W H||`` is solved through its normal
equations ``(H Hᵀ) Wᵀ = H Aᵀ`` — i.e. the solver is handed ``gram = H Hᵀ``
and ``rhs = (A Hᵀ)ᵀ`` and returns ``Wᵀ``; likewise the H-subproblem uses
``gram = Wᵀ W`` and ``rhs = Wᵀ A``.  This is exactly the data layout the
distributed algorithms assemble with their collectives, so the same solver
object is reused verbatim there.

``config.overlap`` is a no-op here: the sequential loop has no collectives
to pipeline, so the blocking and "pipelined" schedules are the same program
(the parallel loops in :mod:`repro.core.naive` / :mod:`repro.core.hpc_nmf`
are where the flag takes effect).
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence

import numpy as np

from repro.comm.profiler import Profiler, TaskCategory
from repro.core.config import Algorithm, NMFConfig
from repro.core.initialization import init_h_global
from repro.core.local_ops import gram, matmul_a_ht, matmul_wt_a
from repro.core.objective import frobenius_norm_squared, objective_from_grams
from repro.core.observers import CallbackObserver, IterationObserver, LoopControl
from repro.core.result import NMFResult
from repro.util.validation import check_matrix, check_nonnegative, check_rank


def anls_nmf(
    A,
    config: NMFConfig,
    callback: Optional[Callable[[int, float], None]] = None,
    observers: Optional[Sequence[IterationObserver]] = None,
) -> NMFResult:
    """Run sequential ANLS NMF (Algorithm 1) on a dense or sparse matrix ``A``.

    Parameters
    ----------
    A:
        ``m × n`` nonnegative matrix (ndarray or scipy sparse).
    config:
        Run options; ``config.algorithm`` is ignored (this is always the
        sequential reference).
    callback:
        Optional ``callback(iteration, relative_error)`` invoked after each
        iteration when error computation is enabled.  Deprecated spelling of
        ``observers=[CallbackObserver(callback)]``.
    observers:
        :class:`~repro.core.observers.IterationObserver` objects notified
        after every outer iteration; any of them may request an early stop.

    Returns
    -------
    NMFResult
        With factors ``W (m × k)`` and ``H (k × n)`` and, when
        ``config.compute_error`` is set, the per-iteration objective history.
    """
    A = check_matrix(A, "A")
    check_nonnegative(A, "A")
    m, n = A.shape
    k = check_rank(config.k, m, n)

    solver = config.make_solver()
    profiler = Profiler()

    H = init_h_global(k, n, config.seed)
    Wt = np.zeros((k, m))
    norm_a_sq = frobenius_norm_squared(A)

    observer_list = list(observers or ())
    if callback is not None:
        observer_list.append(CallbackObserver(callback))
    control = LoopControl(config, observer_list, variant="sequential").start()

    # Gram cache across ANLS half-iterations: when the error path computes
    # H Hᵀ for the objective, the next iteration's W-update reuses it
    # bit-for-bit instead of recomputing the same product.
    cached_gram_h = None

    for iteration in range(config.max_iters):
        iter_start = time.perf_counter()

        # --- W-update: argmin_W ||A - W H|| via (H Hᵀ) Wᵀ = H Aᵀ -----------
        if cached_gram_h is not None:
            gram_h = cached_gram_h
        else:
            with profiler.task(TaskCategory.GRAM):
                gram_h = gram(H, transpose_first=False)  # H Hᵀ, k × k
        with profiler.task(TaskCategory.MM):
            a_ht = matmul_a_ht(A, H.T)               # A Hᵀ, m × k
        with profiler.task(TaskCategory.NLS):
            Wt = solver.solve(gram_h, a_ht.T, x0=Wt if np.any(Wt) else None)
        W = Wt.T

        # --- H-update: argmin_H ||A - W H|| via (Wᵀ W) H = Wᵀ A ------------
        with profiler.task(TaskCategory.GRAM):
            gram_w = gram(W, transpose_first=True)   # Wᵀ W, k × k
        with profiler.task(TaskCategory.MM):
            wt_a = matmul_wt_a(W, A)                 # Wᵀ A, k × n
        with profiler.task(TaskCategory.NLS):
            H = solver.solve(gram_w, wt_a, x0=H)

        objective = rel_error = float("nan")
        if config.compute_error:
            # Gram trick: the cross term reuses Wᵀ A and the new H.
            cross = float(np.vdot(wt_a, H))
            with profiler.task(TaskCategory.GRAM):
                gram_h_new = gram(H, transpose_first=False)
            cached_gram_h = gram_h_new
            objective = objective_from_grams(norm_a_sq, cross, gram_w, gram_h_new)
            rel_error = float(np.sqrt(objective / norm_a_sq)) if norm_a_sq > 0 else 0.0
        if control.record(
            iteration,
            objective=objective,
            relative_error=rel_error,
            seconds=time.perf_counter() - iter_start,
            factors=(W, H),
        ):
            break

    result = NMFResult(
        W=np.ascontiguousarray(W),
        H=np.ascontiguousarray(H),
        config=config.with_options(algorithm=Algorithm.SEQUENTIAL),
        iterations=control.iterations,
        history=control.history,
        breakdown=profiler.snapshot(),
        n_ranks=1,
        grid_shape=None,
        converged=control.converged,
        variant="sequential",
    )
    return control.finish(result)
