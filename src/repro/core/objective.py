"""Objective / error computation for NMF.

Computing ``||A - WH||_F²`` naively would require forming the dense ``m × n``
product ``WH``, which defeats the whole point of a distributed algorithm.  The
standard trick (and the one the paper's implementation relies on when it says
the global aggregation needed for the residual is a small all-reduce) expands
the norm:

    ||A − W H||_F²  =  ||A||_F²  −  2 ⟨A Hᵀ, W⟩  +  ⟨Wᵀ W, H Hᵀ⟩,

so the error follows from the very matrices the ANLS iteration already
computes: the ``m × k`` product ``A Hᵀ`` (or ``k × n`` product ``Wᵀ A``), and
the two ``k × k`` Gram matrices.  ``||A||_F²`` is computed once up front.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.validation import is_sparse


def frobenius_norm_squared(A) -> float:
    """``||A||_F²`` for a dense or sparse matrix."""
    if is_sparse(A):
        return float(A.data @ A.data) if A.nnz else 0.0
    A = np.asarray(A)
    return float(np.vdot(A, A))


def objective_from_grams(
    norm_a_squared: float,
    cross_term: float,
    gram_w: np.ndarray,
    gram_h: np.ndarray,
) -> float:
    """``||A − WH||_F²`` from the Gram-trick pieces.

    Parameters
    ----------
    norm_a_squared:
        ``||A||_F²``.
    cross_term:
        ``⟨A Hᵀ, W⟩ = ⟨Wᵀ A, H⟩`` (a single scalar; in the distributed
        algorithms each rank contributes its local inner product and the
        contributions are summed with an all-reduce).
    gram_w, gram_h:
        ``Wᵀ W`` and ``H Hᵀ`` (both ``k × k``).

    The value is clamped at zero: rounding can push the expression slightly
    negative when the residual is tiny.
    """
    value = norm_a_squared - 2.0 * cross_term + float(np.sum(gram_w * gram_h))
    return max(value, 0.0)


def frobenius_error(A, W: np.ndarray, H: np.ndarray) -> float:
    """``||A − WH||_F`` computed via the Gram trick (never forms ``WH``)."""
    gram_w = W.T @ W
    gram_h = H @ H.T
    if is_sparse(A):
        # ⟨A, WH⟩ = Σ_ij A_ij (WH)_ij over the stored entries of A only.
        coo = A.tocoo()
        cross = float(
            np.sum(coo.data * np.einsum("ij,ji->i", W[coo.row], H[:, coo.col]))
        )
    else:
        cross = float(np.vdot(np.asarray(A) @ H.T, W))
    return math.sqrt(objective_from_grams(frobenius_norm_squared(A), cross, gram_w, gram_h))


def relative_error(A, W: np.ndarray, H: np.ndarray) -> float:
    """``||A − WH||_F / ||A||_F`` (0/0 treated as 0)."""
    denom = math.sqrt(frobenius_norm_squared(A))
    if denom == 0.0:
        return 0.0
    return frobenius_error(A, W, H) / denom
