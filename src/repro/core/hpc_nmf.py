"""Algorithm 3: HPC-NMF on a ``pr × pc`` processor grid.

This is the paper's contribution.  Process ``(i, j)`` owns the data block
``A_ij (m/pr × n/pc)``, the factor sub-blocks ``(W_i)_j (m/p × k)`` and
``(H_j)_i (k × n/p)``, and per iteration executes lines 3-14 of Algorithm 3:

====  ======================================================  ==============
line  operation                                               task category
====  ======================================================  ==============
 3    ``U_ij = (H_j)_i (H_j)_iᵀ``                              Gram
 4    ``H Hᵀ = Σ U_ij``            (all-reduce, all procs)     All-Reduce
 5    collect ``H_j``              (all-gather, proc column)   All-Gather
 6    ``V_ij = A_ij H_jᵀ``                                     MM
 7    ``(A Hᵀ)_i = Σ_j V_ij``      (reduce-scatter, proc row)  Reduce-Scatter
 8    solve for ``(W_i)_j``                                    NLS
 9    ``X_ij = (W_i)_jᵀ (W_i)_j``                              Gram
10    ``Wᵀ W = Σ X_ij``            (all-reduce, all procs)     All-Reduce
11    collect ``W_i``              (all-gather, proc row)      All-Gather
12    ``Y_ij = W_iᵀ A_ij``                                     MM
13    ``(Wᵀ A)_j = Σ_i Y_ij``      (reduce-scatter, proc col)  Reduce-Scatter
14    solve for ``(H_j)_i``                                    NLS
====  ======================================================  ==============

The data matrix is never communicated; per iteration the algorithm moves
``O(min{√(mnk²/p), nk})`` words in ``O(log p)`` messages (Table 2), which is
optimal for dense ``A`` when ``k ≤ √(mn/p)`` (Theorem 5.1).

The 1D variant the paper benchmarks ("HPC-NMF-1D") is simply the grid
``pr = p, pc = 1``; nothing else changes.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.comm.communicator import Comm
from repro.comm.cost import CostLedger
from repro.comm.grid import ProcessGrid, choose_grid
from repro.comm.nonblocking import finish
from repro.comm.panels import panel_slices, stream_reduce_scatter
from repro.comm.profiler import Profiler, TaskCategory
from repro.core.config import Algorithm, NMFConfig
from repro.core.initialization import init_h_slice
from repro.core.local_ops import gram, local_cross_term, matmul_a_ht, matmul_wt_a
from repro.core.objective import objective_from_grams
from repro.core.observers import IterationObserver, LoopControl
from repro.core.result import NMFResult
from repro.dist.distmatrix import DistMatrix2D
from repro.dist.factors import DistributedFactorH, DistributedFactorW
from repro.dist.partition import block_counts
from repro.util.errors import CommunicatorError


def resolve_grid(config: NMFConfig, m: int, n: int, p: int) -> Tuple[int, int]:
    """Determine the processor grid for a run.

    Explicit ``config.grid`` wins; otherwise ``hpc1d`` forces ``(p, 1)`` and
    ``hpc2d`` applies the paper's grid-selection rule (§5).
    """
    if config.grid is not None:
        pr, pc = config.grid
        if pr * pc != p:
            raise CommunicatorError(
                f"requested grid {pr}x{pc} does not match {p} processes"
            )
        return pr, pc
    if config.algorithm == Algorithm.HPC_1D:
        return (p, 1)
    return choose_grid(m, n, p)


def hpc_nmf(
    comm: Comm,
    A,
    config: NMFConfig,
    block_generator: Optional[Callable] = None,
    global_shape: Optional[Tuple[int, int]] = None,
    observers: Optional[Sequence[IterationObserver]] = None,
) -> dict:
    """SPMD per-rank program for Algorithm 3.

    Parameters
    ----------
    comm:
        World communicator of ``p = pr * pc`` ranks.
    A:
        Global data matrix readable by every rank (each rank slices out its
        own ``A_ij``).  Pass ``None`` and supply ``block_generator`` +
        ``global_shape`` to build the local blocks without ever materialising
        the global matrix (the scalable path used by the measured benchmarks).
    config:
        Run options; the grid is resolved by :func:`resolve_grid`.
    block_generator:
        Optional ``generator(row_range, col_range, rank) -> block`` callable.
    global_shape:
        ``(m, n)``; required when ``A`` is ``None``.
    observers:
        Iteration observers, notified on rank 0 (see
        :mod:`repro.core.observers` for the SPMD dispatch rules).

    Returns
    -------
    dict with this rank's factor sub-blocks and diagnostics; combine with
    :func:`assemble_hpc_result`.
    """
    if A is None:
        if block_generator is None or global_shape is None:
            raise CommunicatorError(
                "either a global matrix A or (block_generator, global_shape) is required"
            )
        m, n = global_shape
    else:
        m, n = A.shape
    k = config.k
    p = comm.size

    pr, pc = resolve_grid(config, m, n, p)

    profiler = Profiler()
    solver = config.make_solver()

    grid = ProcessGrid(comm, pr, pc)
    if A is not None:
        data = DistMatrix2D.from_global(grid, A, storage=config.storage)
    else:
        data = DistMatrix2D.from_block_generator(
            grid, (m, n), block_generator, storage=config.storage
        )

    # Factor sub-blocks (Figure 2).  H is seeded identically to the sequential
    # reference; W starts empty (the first half-iteration computes it).
    H_fac = DistributedFactorH.zeros(grid, k, n)
    H_fac.local = init_h_slice(k, n, config.seed, H_fac.global_range)
    W_fac = DistributedFactorW.zeros(grid, m, k)

    norm_a_sq = data.frobenius_norm_squared()

    # Attach the cost ledger only now, after the setup-phase collectives
    # (grid construction, ||A||² reduction), so it records exactly the
    # per-iteration communication the paper's analysis covers.  The row and
    # column sub-communicators resolve the ledger dynamically through their
    # parent, so their collectives are recorded too.
    ledger = CostLedger()
    comm.attach_ledger(ledger)

    # Reduce-scatter block sizes: the m/pr rows of V_ij split pc ways, and the
    # n/pc columns of Y_ij split pr ways — exactly the (W_i)_j / (H_j)_i
    # sub-blocking, so each rank receives precisely its own sub-block.
    local_rows = data.row_range[1] - data.row_range[0]
    local_cols = data.col_range[1] - data.col_range[0]
    w_scatter_counts = block_counts(local_rows, pc)
    h_scatter_counts = block_counts(local_cols, pr)

    # The scatter boundaries also tile the line-6/line-12 matmuls: the rows
    # of V_ij bound for row-comm rank t come from the matching row panel of
    # A_ij, the columns of Y_ij for col-comm rank t from the matching column
    # panel.  Both schedules compute the MM panel-by-panel over these slices
    # (pre-cut once; for sparse CSR the column cut is the one real copy), so
    # panel streaming versus monolithic reduce-scatter is purely a schedule
    # choice — never a different GEMM rounding.
    w_slices = panel_slices(w_scatter_counts)
    h_slices = panel_slices(h_scatter_counts)
    a_row_panels = [data.block[s] for s in w_slices]
    a_col_panels = [data.block[:, s] for s in h_slices]

    # Reusable collective workspaces: every iteration runs the same
    # collectives on the same shapes, so their results are written into
    # persistent per-rank buffers instead of fresh allocations.  Each live
    # result gets its own named buffer (gram_w and gram_h_new are both k × k
    # but coexist in the error computation, so they must not share).
    ws = comm.workspace
    w_sub_rows = W_fac.global_range[1] - W_fac.global_range[0]
    h_sub_cols = H_fac.global_range[1] - H_fac.global_range[0]
    gram_h_buf = ws.get("gram_h", (k, k))
    gram_w_buf = ws.get("gram_w", (k, k))
    gram_h_new_buf = ws.get("gram_h_new", (k, k))
    H_j_buf = ws.get("H_j", (k, local_cols))
    W_i_buf = ws.get("W_i", (local_rows, k))
    aht_buf = ws.get("aht_block", (w_sub_rows, k))
    wta_buf = ws.get("wta_block", (k, h_sub_cols))
    # Assembly buffers for the blocking schedule's monolithic reduce-scatters
    # (the panel-streamed schedule never materialises the full MM output) and
    # the persistent home of W's local sub-block — the line-8 NLS returns
    # (W_i)_jᵀ, whose transpose is copied here instead of allocating a fresh
    # contiguous array every iteration.
    v_buf = ws.get("v_block", (local_rows, k))
    y_buf = ws.get("y_block", (k, local_cols))
    w_local_buf = ws.get("w_local", (w_sub_rows, k))

    variant_name = "hpc1d" if config.algorithm == Algorithm.HPC_1D else "hpc2d"
    control = LoopControl(config, observers, comm=comm, variant=variant_name).start()

    # Gram cache across half-iterations: the error path's all-reduced H Hᵀ is
    # exactly the quantity lines 3-4 recompute next iteration (same local
    # grams, same rank-ordered reduction → same bits), so reusing it skips a
    # Gram and an all-reduce per iteration whenever the objective is tracked.
    # Every rank takes this branch in the same iterations, so the collective
    # schedule stays aligned.
    cached_gram_h = None

    # Pipelined schedule (config.overlap, see repro.comm.nonblocking): the
    # line-5 H_j gather is issued at the *end of the previous iteration* so it
    # overlaps the error path and lines 3-4; the line-4 all-reduce is issued
    # nonblocking and claimed only just before the line-8 NLS needs it; the
    # line-11 W_i gather is issued right after line 8 so it overlaps the
    # lines 9-10 Gram + all-reduce.  With config.panel_comm the line-7 and
    # line-13 reduce-scatters are additionally *panel-streamed*: each tiled
    # MM panel is issued as a nonblocking ireduce_scatter the moment it is
    # computed, so panel t's communication overlaps panel t+1's GEMM (see
    # repro.comm.panels).  Every schedule runs the same modeled collectives
    # the same number of times in the same program order on every rank, so
    # factors and cost ledgers stay byte-identical.
    pipeline = bool(config.overlap) and p > 1
    panel_stream = pipeline and bool(config.panel_comm)
    # Issuing iteration i+1's gather *before* iteration i's stopping decision
    # is only safe when the loop provably runs to max_iters (fixed iteration
    # count and nobody who can request an early stop).  Otherwise the gather
    # is issued after control.record declines to stop — a smaller overlap
    # window (the error path stays exposed) but the same collective count.
    speculative = pipeline and config.tol == 0 and not observers
    if pipeline:
        # Start the helper threads / shadow communicators now (collective),
        # so no setup cost or silent-split traffic lands inside the loop.
        for c in (comm, grid.row_comm, grid.col_comm):
            c.ensure_nonblocking()

    # Iteration 0's line-5 gather, issued before the loop (H is seeded).
    h_gather = H_fac.icol_block(out=H_j_buf) if pipeline else None

    # Deferred error path (speculative regime only): iteration i's gram_h_new
    # all-reduce stays in flight *across the iteration boundary* — it is next
    # iteration's gram_h via the cached_gram_h reuse — and is claimed just
    # before the line-8 NLS needs it, overlapping the cross-term reduction,
    # the line-5 gather wait and the whole line-6/7 panel stream.  Iteration
    # i's history record is deferred with it, which is safe exactly in the
    # speculative regime: tol == 0 and no observers means record() can never
    # request a stop, and records still happen in iteration order.
    pending = None

    def claim_pending():
        nonlocal pending, cached_gram_h
        gram_h_new = finish(pending["handle"], profiler, TaskCategory.ALL_REDUCE)
        objective = objective_from_grams(
            norm_a_sq, pending["cross"], pending["gram_w"], gram_h_new
        )
        rel_error = float(np.sqrt(objective / norm_a_sq)) if norm_a_sq > 0 else 0.0
        control.record(
            pending["iteration"],
            objective=objective,
            relative_error=rel_error,
            seconds=pending["seconds"],
        )
        cached_gram_h = gram_h_new
        pending = None
        return gram_h_new

    try:
        for iteration in range(config.max_iters):
            iter_start = time.perf_counter()

            # ---------------- Compute W given H (lines 3-8) ----------------
            gram_h = None
            gram_h_handle = None
            if pending is not None:
                pass  # gram_h arrives when the in-flight error path is claimed
            elif cached_gram_h is not None:
                gram_h = cached_gram_h
            else:
                with profiler.task(TaskCategory.GRAM):
                    U_ij = gram(H_fac.local, transpose_first=False)  # line 3
                if pipeline:
                    gram_h_handle = comm.iallreduce(U_ij, out=gram_h_buf)  # line 4
                else:
                    with profiler.task(TaskCategory.ALL_REDUCE):
                        gram_h = comm.allreduce(U_ij, out=gram_h_buf)  # line 4
            if h_gather is not None:
                H_j = finish(h_gather, profiler, TaskCategory.ALL_GATHER)  # line 5
                h_gather = None
            else:
                with profiler.task(TaskCategory.ALL_GATHER):
                    H_j = H_fac.col_block(out=H_j_buf)               # line 5
            Ht = H_j.T
            if panel_stream:
                aht_block = stream_reduce_scatter(                   # lines 6-7
                    grid.row_comm,
                    lambda t: matmul_a_ht(a_row_panels[t], Ht),
                    w_scatter_counts,
                    axis=0,
                    out=aht_buf,
                    profiler=profiler,
                )
            else:
                with profiler.task(TaskCategory.MM):
                    for t, s in enumerate(w_slices):                 # line 6
                        np.copyto(v_buf[s], matmul_a_ht(a_row_panels[t], Ht))
                with profiler.task(TaskCategory.REDUCE_SCATTER):
                    aht_block = grid.row_comm.reduce_scatter(        # line 7
                        v_buf, counts=w_scatter_counts, axis=0, out=aht_buf
                    )
            if pending is not None:
                gram_h = claim_pending()
            if gram_h_handle is not None:
                gram_h = finish(gram_h_handle, profiler, TaskCategory.ALL_REDUCE)
            with profiler.task(TaskCategory.NLS):
                Wt_local = solver.solve(                             # line 8
                    gram_h,
                    aht_block.T,
                    x0=W_fac.local.T if np.any(W_fac.local) else None,
                )
            np.copyto(w_local_buf, Wt_local.T)
            W_fac.local = w_local_buf

            # ---------------- Compute H given W (lines 9-14) ---------------
            # Pipelined: the line-11 gather starts now and overlaps 9-10.
            w_gather = W_fac.irow_block(out=W_i_buf) if pipeline else None
            with profiler.task(TaskCategory.GRAM):
                X_ij = gram(W_fac.local, transpose_first=True)       # line 9
            with profiler.task(TaskCategory.ALL_REDUCE):
                gram_w = comm.allreduce(X_ij, out=gram_w_buf)        # line 10
            if w_gather is not None:
                W_i = finish(w_gather, profiler, TaskCategory.ALL_GATHER)  # line 11
            else:
                with profiler.task(TaskCategory.ALL_GATHER):
                    W_i = W_fac.row_block(out=W_i_buf)               # line 11
            if panel_stream:
                wta_block = stream_reduce_scatter(                   # lines 12-13
                    grid.col_comm,
                    lambda t: matmul_wt_a(W_i, a_col_panels[t]),
                    h_scatter_counts,
                    axis=1,
                    out=wta_buf,
                    profiler=profiler,
                )
            else:
                with profiler.task(TaskCategory.MM):
                    for t, s in enumerate(h_slices):                 # line 12
                        np.copyto(y_buf[:, s], matmul_wt_a(W_i, a_col_panels[t]))
                with profiler.task(TaskCategory.REDUCE_SCATTER):
                    wta_block = grid.col_comm.reduce_scatter(        # line 13
                        y_buf, counts=h_scatter_counts, axis=1, out=wta_buf
                    )
            with profiler.task(TaskCategory.NLS):
                H_fac.local = solver.solve(gram_w, wta_block, x0=H_fac.local)  # line 14

            if speculative and iteration + 1 < config.max_iters:
                # Next iteration's line-5 gather overlaps the error path too.
                h_gather = H_fac.icol_block(out=H_j_buf)

            objective = rel_error = float("nan")
            if config.compute_error:
                with profiler.task(TaskCategory.GRAM):
                    local_gram_h = gram(H_fac.local, transpose_first=False)
                # Pipelined: issue the H-Gram all-reduce first so it overlaps
                # at least the cross-term reduction (and, speculatively, next
                # iteration's lines 5-7).  Same two all-reduces either way;
                # record=False + record_collective books the in-flight one at
                # the blocking schedule's program point (after the cross), so
                # the ledger's accumulation order stays schedule-invariant.
                gram_h_new_handle = (
                    comm.iallreduce(local_gram_h, out=gram_h_new_buf, record=False)
                    if pipeline
                    else None
                )
                with profiler.task(TaskCategory.ALL_REDUCE):
                    cross = comm.allreduce_scalar(
                        local_cross_term(wta_block, H_fac.local)
                    )
                if gram_h_new_handle is not None:
                    comm.record_collective(
                        "all_reduce",
                        local_gram_h.size * local_gram_h.itemsize / 8.0,
                    )
                if speculative and gram_h_new_handle is not None:
                    pending = {
                        "iteration": iteration,
                        "cross": cross,
                        "gram_w": gram_w,
                        "handle": gram_h_new_handle,
                        "seconds": time.perf_counter() - iter_start,
                    }
                    continue  # record() runs at the claim point
                if gram_h_new_handle is not None:
                    gram_h_new = finish(
                        gram_h_new_handle, profiler, TaskCategory.ALL_REDUCE
                    )
                else:
                    with profiler.task(TaskCategory.ALL_REDUCE):
                        gram_h_new = comm.allreduce(
                            local_gram_h, out=gram_h_new_buf
                        )
                cached_gram_h = gram_h_new
                objective = objective_from_grams(norm_a_sq, cross, gram_w, gram_h_new)
                rel_error = float(np.sqrt(objective / norm_a_sq)) if norm_a_sq > 0 else 0.0
            if control.record(
                iteration,
                objective=objective,
                relative_error=rel_error,
                seconds=time.perf_counter() - iter_start,
            ):
                break
            if pipeline and h_gather is None and iteration + 1 < config.max_iters:
                h_gather = H_fac.icol_block(out=H_j_buf)
        if pending is not None:
            # The final iteration's error path has no next iteration to hide
            # behind: claim it now and write its history record.
            claim_pending()
    finally:
        # Drain an unconsumed speculative gather or deferred error-path
        # all-reduce (only possible on an exception mid-iteration) so their
        # workspace buffers unpin, then stop the helper threads.  All no-ops
        # on the blocking schedule.
        if h_gather is not None:
            h_gather.wait()
        if pending is not None:
            pending["handle"].wait()
            pending = None
        for c in (grid.col_comm, grid.row_comm, comm):
            c.shutdown_nonblocking()

    return {
        "rank": comm.rank,
        "coords": grid.coords,
        "grid": (pr, pc),
        "W_local": W_fac.local,
        "H_local": H_fac.local,
        "w_range": W_fac.global_range,
        "h_range": H_fac.global_range,
        "history": control.history,
        "breakdown": profiler.snapshot(),
        "ledger": ledger,
        "iterations": control.iterations,
        "converged": control.converged,
        "shape": (m, n),
    }


def assemble_hpc_result(per_rank: list[dict], config: NMFConfig) -> NMFResult:
    """Combine the per-rank outputs of :func:`hpc_nmf` into a global result."""
    from repro.comm.profiler import max_over_ranks

    per_rank = sorted(per_rank, key=lambda d: d["rank"])
    m, n = per_rank[0]["shape"]
    k = config.k
    W = np.zeros((m, k))
    H = np.zeros((k, n))
    for entry in per_rank:
        lo, hi = entry["w_range"]
        W[lo:hi] = entry["W_local"]
        lo, hi = entry["h_range"]
        H[:, lo:hi] = entry["H_local"]
    return NMFResult(
        W=W,
        H=H,
        config=config,
        iterations=per_rank[0]["iterations"],
        history=per_rank[0]["history"],
        breakdown=max_over_ranks([e["breakdown"] for e in per_rank]),
        ledger_summary=per_rank[0]["ledger"].summary(),
        n_ranks=len(per_rank),
        grid_shape=per_rank[0]["grid"],
        converged=per_rank[0]["converged"],
        variant="hpc1d" if config.algorithm == Algorithm.HPC_1D else "hpc2d",
        backend=config.backend,
    )
