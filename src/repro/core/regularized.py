"""Regularized NMF (Frobenius and L1 penalties on the factors).

The paper's framework solves each ANLS subproblem from its normal equations;
the two standard regularizers fit that interface with no change to the
parallel algorithms' communication pattern, which is why they are provided as
an extension here:

* **Frobenius (ridge) regularization** ``λ_F (‖W‖_F² + ‖H‖_F²)`` adds
  ``λ_F · I`` to the k×k Gram matrix of each subproblem;
* **L1 (sparsity) regularization** ``λ_1 (‖W‖_1 + ‖H‖_1)`` (with nonnegative
  factors, the L1 norm is just the entry sum) subtracts ``λ_1/2`` from every
  entry of the right-hand side.

Both modifications act on the *k×k* and *k×c* matrices that already exist on
every rank after the collectives, so distributed regularized NMF costs exactly
the same communication as the unregularized algorithm — the property that
makes this a natural extension of the paper's method (and the approach used by
the authors' later MPI-FAUN/PLANC software).

:func:`regularized_nmf` runs the sequential version;
:func:`regularize_gram_rhs` is the shared helper the parallel path can apply
to its local normal equations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.config import NMFConfig
from repro.core.local_ops import gram, matmul_a_ht, matmul_wt_a
from repro.core.objective import frobenius_norm_squared, objective_from_grams
from repro.core.observers import IterationObserver, LoopControl
from repro.core.result import NMFResult
from repro.util.errors import ShapeError
from repro.util.validation import check_matrix, check_nonnegative, check_rank
from repro.core.initialization import init_h_global


@dataclass(frozen=True)
class Regularization:
    """Regularization weights for the two factors.

    ``frobenius`` is the ridge weight λ_F, ``l1`` the sparsity weight λ_1;
    both must be nonnegative and both default to zero (plain NMF).
    """

    frobenius: float = 0.0
    l1: float = 0.0

    def __post_init__(self):
        if self.frobenius < 0 or self.l1 < 0:
            raise ShapeError("regularization weights must be nonnegative")

    @property
    def is_active(self) -> bool:
        return self.frobenius > 0 or self.l1 > 0


def regularize_gram_rhs(
    gram_matrix: np.ndarray,
    rhs: np.ndarray,
    reg: Regularization,
) -> Tuple[np.ndarray, np.ndarray]:
    """Apply ridge/L1 regularization to a normal-equations pair.

    Returns new ``(gram, rhs)`` arrays; the inputs are not modified.  This is
    the only hook a distributed implementation needs, since both matrices are
    already replicated (gram) or locally owned (rhs) on every rank.
    """
    if not reg.is_active:
        return gram_matrix, rhs
    k = gram_matrix.shape[0]
    new_gram = gram_matrix + reg.frobenius * np.eye(k)
    new_rhs = rhs - 0.5 * reg.l1 if reg.l1 > 0 else rhs
    return new_gram, new_rhs


def regularized_objective(
    norm_a_sq: float,
    cross: float,
    gram_w: np.ndarray,
    gram_h: np.ndarray,
    W: np.ndarray,
    H: np.ndarray,
    reg: Regularization,
) -> float:
    """The penalized objective ``‖A−WH‖² + λ_F(‖W‖²+‖H‖²) + λ_1(‖W‖_1+‖H‖_1)``."""
    base = objective_from_grams(norm_a_sq, cross, gram_w, gram_h)
    penalty = 0.0
    if reg.frobenius > 0:
        penalty += reg.frobenius * (float(np.vdot(W, W)) + float(np.vdot(H, H)))
    if reg.l1 > 0:
        penalty += reg.l1 * (float(np.sum(W)) + float(np.sum(H)))
    return base + penalty


def regularized_nmf(
    A,
    config: NMFConfig,
    regularization: Optional[Regularization] = None,
    observers: Optional[Sequence[IterationObserver]] = None,
) -> NMFResult:
    """Sequential ANLS NMF with ridge and/or L1 regularization on both factors.

    With ``regularization=None`` (or all-zero weights) this reduces exactly to
    :func:`repro.core.anls.anls_nmf`'s iteration (same updates, same seed
    handling), which the tests verify.  ``observers`` follow the protocol of
    :mod:`repro.core.observers`.
    """
    import time

    reg = regularization or Regularization()
    A = check_matrix(A, "A")
    check_nonnegative(A, "A")
    m, n = A.shape
    k = check_rank(config.k, m, n)

    solver = config.make_solver()
    H = init_h_global(k, n, config.seed)
    Wt = np.zeros((k, m))
    norm_a_sq = frobenius_norm_squared(A)

    control = LoopControl(config, observers, variant="regularized").start()

    for iteration in range(config.max_iters):
        start = time.perf_counter()

        gram_h = gram(H, transpose_first=False)
        a_ht = matmul_a_ht(A, H.T)
        g, r = regularize_gram_rhs(gram_h, a_ht.T, reg)
        Wt = solver.solve(g, r, x0=Wt if np.any(Wt) else None)
        W = Wt.T

        gram_w = gram(W, transpose_first=True)
        wt_a = matmul_wt_a(W, A)
        g, r = regularize_gram_rhs(gram_w, wt_a, reg)
        H = solver.solve(g, r, x0=H)

        objective = rel = float("nan")
        if config.compute_error:
            cross = float(np.vdot(wt_a, H))
            gram_h_new = gram(H, transpose_first=False)
            objective = regularized_objective(
                norm_a_sq, cross, gram_w, gram_h_new, W, H, reg
            )
            rel = float(np.sqrt(max(objective, 0.0) / norm_a_sq)) if norm_a_sq > 0 else 0.0
        if control.record(
            iteration,
            objective=objective,
            relative_error=rel,
            seconds=time.perf_counter() - start,
            factors=(W, H),
        ):
            break

    result = NMFResult(
        W=np.ascontiguousarray(W),
        H=np.ascontiguousarray(H),
        config=config,
        iterations=control.iterations,
        history=control.history,
        converged=control.converged,
        variant="regularized",
    )
    return control.finish(result)
