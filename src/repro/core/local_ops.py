"""Local matrix kernels shared by the sequential and parallel algorithms.

These are the "MM" and "Gram" tasks of the paper's time breakdown (§6.3):
multiplying the local data block with a factor block, and forming the local
contribution to the k×k Gram matrices.  They transparently handle dense
(ndarray) and sparse (CSR/CSC) data blocks; in the sparse case the matmul cost
is ``2·nnz(A_local)·k`` flops instead of ``2·(m_local·n_local)·k``, exactly the
distinction the paper draws in its computation-cost analysis.
"""

from __future__ import annotations

import numpy as np

from repro.util.validation import is_sparse


def gram(X: np.ndarray, transpose_first: bool) -> np.ndarray:
    """Return ``XᵀX`` (``transpose_first=True``) or ``XXᵀ`` (False), symmetrised.

    Used for the local Gram contributions ``U_ij = (H_j)_i (H_j)_iᵀ`` and
    ``X_ij = (W_i)_jᵀ (W_i)_j`` (lines 3 and 9 of Algorithm 3).
    """
    X = np.asarray(X)
    G = X.T @ X if transpose_first else X @ X.T
    # Force exact symmetry so downstream Cholesky factorizations are stable.
    return (G + G.T) * 0.5


def matmul_a_ht(A_block, Ht: np.ndarray) -> np.ndarray:
    """``A_block @ Ht`` where ``Ht = Hᵀ`` has shape (n_local, k).

    This is ``V_ij = A_ij H_jᵀ`` (line 6 of Algorithm 3) and the corresponding
    product in Algorithm 2; returns an (m_local, k) dense array.
    """
    Ht = np.asarray(Ht)
    result = A_block @ Ht
    return np.asarray(result)


def matmul_wt_a(W_block: np.ndarray, A_block) -> np.ndarray:
    """``W_blockᵀ @ A_block`` giving a (k, n_local) dense array.

    This is ``Y_ij = W_iᵀ A_ij`` (line 12 of Algorithm 3).  For sparse blocks
    the product is computed as ``(A_blockᵀ @ W_block)ᵀ`` so the sparse operand
    stays on the left (scipy only implements sparse @ dense efficiently).
    """
    W_block = np.asarray(W_block)
    if is_sparse(A_block):
        return np.ascontiguousarray((A_block.T @ W_block).T)
    return W_block.T @ A_block


def local_cross_term(rhs_block: np.ndarray, factor_block: np.ndarray) -> float:
    """Local contribution to ``⟨A Hᵀ, W⟩`` / ``⟨Wᵀ A, H⟩`` for the error trick.

    Both arguments are this rank's co-located blocks of the two matrices; the
    global cross term is the all-reduce sum of these scalars.
    """
    return float(np.vdot(np.asarray(rhs_block), np.asarray(factor_block)))


def dense_matmul_flops(m: int, n: int, k: int) -> float:
    """Flops of one dense ``(m × n) @ (n × k)`` multiply: ``2 m n k``.

    This is the single source of truth for the §4.3 matmul flop count —
    the analytic model (:mod:`repro.perf.model`) derives its per-iteration
    expressions from it rather than re-encoding the formula.
    """
    return 2.0 * m * n * k


def sparse_matmul_flops(nnz: float, k: int) -> float:
    """Flops of one sparse-times-dense multiply with ``nnz`` nonzeros: ``2 nnz k``.

    The §4.3 / §5 sparse counterpart of :func:`dense_matmul_flops`; also the
    single source of truth for :mod:`repro.perf.model`.
    """
    return 2.0 * nnz * k


def matmul_flops(A_block, k: int) -> float:
    """Flop count of multiplying the local block with a k-column factor.

    Dense blocks cost ``2 m_local n_local k`` flops; sparse blocks
    ``2 nnz k`` (the paper's §4.3 / §5 distinction).
    """
    if is_sparse(A_block):
        return sparse_matmul_flops(A_block.nnz, k)
    m_local, n_local = A_block.shape
    return dense_matmul_flops(m_local, n_local, k)


# The NLS-side flop primitives (Cholesky factorization and triangular
# substitution) live next to the kernels that tally them; re-exported here so
# all §4.3 flop accounting is importable from one module.
from repro.nls.kernels import cholesky_flops, triangular_solve_flops  # noqa: E402,F401
