"""Result containers for NMF runs.

:class:`NMFResult` carries everything the examples, tests and the experiment
harness need: the factors, per-iteration objective values, the per-task time
breakdown (the six categories of Figure 3) and the communication ledger of
the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.comm.profiler import TimeBreakdown
from repro.core.config import NMFConfig


@dataclass
class IterationStats:
    """Per-iteration diagnostics."""

    iteration: int
    objective: float
    relative_error: float
    seconds: float


@dataclass
class NMFResult:
    """Outcome of an NMF run (sequential or parallel).

    Attributes
    ----------
    W, H:
        The nonnegative factors, ``m × k`` and ``k × n``.  For parallel runs
        these are the assembled global factors.
    config:
        The configuration that produced this result.
    iterations:
        Number of outer iterations actually performed.
    history:
        Per-iteration statistics (empty if ``compute_error=False``).
    breakdown:
        Wall-clock seconds per task category, summed over iterations and taken
        as the max over ranks (the parallel critical path).
    ledger_summary:
        Per-collective words/messages recorded by the communicator, from rank
        0's ledger (all ranks are symmetric in these algorithms).
    n_ranks, grid_shape:
        Parallel execution geometry (1 and None for sequential runs).
    converged:
        True when the relative-error improvement dropped below ``config.tol``
        before ``max_iters`` (always False when ``tol == 0``).
    """

    W: np.ndarray
    H: np.ndarray
    config: NMFConfig
    iterations: int
    history: List[IterationStats] = field(default_factory=list)
    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown.zeros)
    ledger_summary: Dict[str, dict] = field(default_factory=dict)
    n_ranks: int = 1
    grid_shape: Optional[tuple] = None
    converged: bool = False

    @property
    def objective(self) -> float:
        """Final objective value ``||A - WH||_F²`` (NaN if never computed)."""
        return self.history[-1].objective if self.history else float("nan")

    @property
    def relative_error(self) -> float:
        """Final relative error ``||A - WH||_F / ||A||_F`` (NaN if never computed)."""
        return self.history[-1].relative_error if self.history else float("nan")

    @property
    def objective_history(self) -> List[float]:
        return [s.objective for s in self.history]

    @property
    def relative_error_history(self) -> List[float]:
        return [s.relative_error for s in self.history]

    @property
    def seconds_per_iteration(self) -> float:
        """Mean wall-clock seconds per outer iteration (total breakdown / iterations)."""
        if self.iterations == 0:
            return 0.0
        return self.breakdown.total / self.iterations

    def reconstruction(self) -> np.ndarray:
        """The dense low-rank approximation ``W @ H``."""
        return self.W @ self.H

    def summary(self) -> str:
        """Human-readable one-paragraph summary (used by the examples)."""
        lines = [
            f"NMF result: rank k={self.config.k}, algorithm={self.config.algorithm.value}, "
            f"solver={self.config.solver}",
            f"  factors: W {self.W.shape}, H {self.H.shape}",
            f"  iterations: {self.iterations} (converged={self.converged})",
        ]
        if self.history:
            lines.append(
                f"  relative error: {self.history[0].relative_error:.4f} -> "
                f"{self.relative_error:.4f}"
            )
        if self.n_ranks > 1:
            lines.append(
                f"  ranks: {self.n_ranks}"
                + (f", grid {self.grid_shape[0]}x{self.grid_shape[1]}" if self.grid_shape else "")
            )
        total = self.breakdown.total
        if total > 0:
            parts = ", ".join(
                f"{cat}={sec:.3f}s" for cat, sec in sorted(self.breakdown.as_dict().items())
                if sec > 0
            )
            lines.append(f"  time breakdown: total={total:.3f}s ({parts})")
        return "\n".join(lines)
