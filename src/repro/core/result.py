"""Result containers for NMF runs.

:class:`NMFResult` carries everything the examples, tests and the experiment
harness need: the factors, per-iteration objective values, the per-task time
breakdown (the six categories of Figure 3), the communication ledger of the
run, and provenance (which registered **variant**, execution **backend** and
NLS **solver** produced it).  Results round-trip to disk as ``.npz`` archives
through :meth:`NMFResult.save` / :meth:`NMFResult.load`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Union

import numpy as np

from repro.comm.profiler import TimeBreakdown
from repro.core.config import NMFConfig
from repro.util.errors import ModelLoadError

if TYPE_CHECKING:  # import would be circular at runtime (plan → variants → result)
    from repro.plan.planner import ExecutionPlan


@dataclass
class IterationStats:
    """Per-iteration diagnostics."""

    iteration: int
    objective: float
    relative_error: float
    seconds: float


@dataclass
class NMFResult:
    """Outcome of an NMF run (sequential or parallel).

    Attributes
    ----------
    W, H:
        The nonnegative factors, ``m × k`` and ``k × n``.  For parallel runs
        these are the assembled global factors.
    config:
        The configuration that produced this result.
    iterations:
        Number of outer iterations actually performed.
    history:
        Per-iteration statistics (empty if ``compute_error=False``).
    breakdown:
        Wall-clock seconds per task category, summed over iterations and taken
        as the max over ranks (the parallel critical path).
    ledger_summary:
        Per-collective words/messages recorded by the communicator, from rank
        0's ledger (all ranks are symmetric in these algorithms).
    n_ranks, grid_shape:
        Parallel execution geometry (1 and None for sequential runs).
    converged:
        True when the relative-error improvement dropped below ``config.tol``
        before ``max_iters`` (always False when ``tol == 0``).
    variant, backend, solver:
        Provenance: the registry name of the variant that produced this
        result (see :mod:`repro.core.variants`), the execution backend it ran
        on (``None`` for in-process sequential variants) and the local NLS
        solver it used.  Filled from ``config`` when not set explicitly.
    plan:
        The :class:`~repro.plan.planner.ExecutionPlan` the planner chose when
        the run used ``variant="auto"`` / ``grid="auto"`` (``None``
        otherwise).  Carries the predicted per-iteration
        :class:`~repro.comm.profiler.TimeBreakdown` and words moved, so
        predicted-vs-measured comparison is ``result.plan.breakdown`` next
        to ``result.breakdown``.
    """

    W: np.ndarray
    H: np.ndarray
    config: NMFConfig
    iterations: int
    history: List[IterationStats] = field(default_factory=list)
    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown.zeros)
    ledger_summary: Dict[str, dict] = field(default_factory=dict)
    n_ranks: int = 1
    grid_shape: Optional[tuple] = None
    converged: bool = False
    variant: str = ""
    backend: Optional[str] = None
    solver: str = ""
    plan: Optional["ExecutionPlan"] = None

    def __post_init__(self):
        if not self.variant:
            self.variant = self.config.algorithm.value
        if not self.solver:
            self.solver = self.config.solver
        if self.backend is None and self.n_ranks > 1:
            self.backend = self.config.backend

    @property
    def objective(self) -> float:
        """Final objective value ``||A - WH||_F²`` (NaN if never computed)."""
        return self.history[-1].objective if self.history else float("nan")

    @property
    def relative_error(self) -> float:
        """Final relative error ``||A - WH||_F / ||A||_F`` (NaN if never computed)."""
        return self.history[-1].relative_error if self.history else float("nan")

    @property
    def objective_history(self) -> List[float]:
        return [s.objective for s in self.history]

    @property
    def relative_error_history(self) -> List[float]:
        return [s.relative_error for s in self.history]

    @property
    def seconds_per_iteration(self) -> float:
        """Mean wall-clock seconds per outer iteration (total breakdown / iterations)."""
        if self.iterations == 0:
            return 0.0
        return self.breakdown.total / self.iterations

    def reconstruction(self) -> np.ndarray:
        """The dense low-rank approximation ``W @ H``."""
        return self.W @ self.H

    def summary(self) -> str:
        """Human-readable one-paragraph summary (used by the examples)."""
        lines = [
            f"NMF result: rank k={self.config.k}, variant={self.variant}, "
            f"solver={self.solver}",
            f"  factors: W {self.W.shape}, H {self.H.shape}",
            f"  iterations: {self.iterations} (converged={self.converged})",
        ]
        if self.history:
            lines.append(
                f"  relative error: {self.history[0].relative_error:.4f} -> "
                f"{self.relative_error:.4f}"
            )
        if self.n_ranks > 1:
            lines.append(
                f"  ranks: {self.n_ranks}"
                + (f", grid {self.grid_shape[0]}x{self.grid_shape[1]}" if self.grid_shape else "")
                + (f", backend {self.backend}" if self.backend else "")
            )
        total = self.breakdown.total
        if total > 0:
            parts = ", ".join(
                f"{cat}={sec:.3f}s" for cat, sec in sorted(self.breakdown.as_dict().items())
                if sec > 0
            )
            lines.append(f"  time breakdown: total={total:.3f}s ({parts})")
        if self.plan is not None:
            lines.append(f"  plan: {self.plan.summary()}")
        return "\n".join(lines)

    def model_metadata(self) -> dict:
        """The scalar facts a model store needs to list/validate this model.

        Everything here is JSON-able and cheap to compute; the serving layer
        (:mod:`repro.serve.store`) exposes this dict per registered model so
        operators can see what is deployed without touching the factors.
        """
        return {
            "k": int(self.config.k),
            "m": int(self.W.shape[0]),
            "n": int(self.H.shape[1]),
            "variant": self.variant,
            "solver": self.solver,
            "backend": self.backend,
            "iterations": int(self.iterations),
            "converged": bool(self.converged),
            "relative_error": float(self.relative_error),
        }

    # -- serialisation -------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-Python representation (factors stay ndarrays; rest is JSON-able).

        Subclass dataclass fields (e.g. ``SymNMFResult.alpha``) are included
        automatically, so variant-specific results round-trip without
        overriding this method.
        """
        config = dataclasses.asdict(self.config)
        config["algorithm"] = self.config.algorithm.value
        config["grid"] = list(self.config.grid) if self.config.grid else None
        payload = {
            "W": self.W,
            "H": self.H,
            "config": config,
            "iterations": self.iterations,
            "history": [dataclasses.asdict(s) for s in self.history],
            "breakdown": self.breakdown.as_dict(),
            "ledger_summary": self.ledger_summary,
            "n_ranks": self.n_ranks,
            "grid_shape": list(self.grid_shape) if self.grid_shape else None,
            "converged": self.converged,
            "variant": self.variant,
            "backend": self.backend,
            "solver": self.solver,
            "plan": self.plan.to_dict() if self.plan is not None else None,
        }
        base_fields = {f.name for f in dataclasses.fields(NMFResult)}
        for extra in dataclasses.fields(self):
            if extra.name not in base_fields:
                payload[extra.name] = getattr(self, extra.name)
        return payload

    def save(self, path: Union[str, Path]) -> Path:
        """Write the result to ``path`` as a ``.npz`` archive.

        The factors are stored as arrays; everything else (config, history,
        breakdown, ledger, provenance) is stored as one JSON metadata string,
        so :meth:`load` reconstructs the full result without pickling.
        """
        payload = self.to_dict()
        meta_dict = {k: v for k, v in payload.items() if k not in ("W", "H")}
        meta_dict["saved_at"] = datetime.now(timezone.utc).isoformat(timespec="seconds")
        meta = json.dumps(meta_dict)
        path = Path(path)
        np.savez_compressed(path, W=self.W, H=self.H, meta=np.asarray(meta))
        # np.savez appends .npz when missing; report the real on-disk path.
        return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "NMFResult":
        """Reconstruct a result saved by :meth:`save`.

        Loading through the base class dispatches on the recorded variant's
        registered ``result_class`` (see :mod:`repro.core.variants`), so a
        saved symmetric run comes back as the
        :class:`~repro.core.symmetric.SymNMFResult` subclass — and so do any
        third-party variants that register their own result class.  Results
        of unregistered variants load as plain :class:`NMFResult`.

        A missing file, a corrupt archive, or an archive that lacks one of
        the required entries (``W``, ``H``, ``meta``) raises
        :class:`~repro.util.errors.ModelLoadError` naming the path and the
        missing key — never a raw NumPy/zipfile/OS error — so the serving
        model store can surface a diagnosable message.
        """
        path = Path(path)
        if not path.exists():
            raise ModelLoadError(
                f"model file {path} does not exist", path=path
            )
        try:
            archive = np.load(path, allow_pickle=False)
        except Exception as exc:
            raise ModelLoadError(
                f"model file {path} is not a readable .npz archive: {exc}",
                path=path,
            ) from exc
        with archive as data:
            for key in ("W", "H", "meta"):
                if key not in data.files:
                    raise ModelLoadError(
                        f"model file {path} is missing required entry {key!r} "
                        f"(found: {sorted(data.files)}); was it saved by "
                        "NMFResult.save?",
                        path=path,
                        missing_key=key,
                    )
            W = np.array(data["W"])
            H = np.array(data["H"])
            try:
                meta = json.loads(str(data["meta"]))
            except json.JSONDecodeError as exc:
                raise ModelLoadError(
                    f"model file {path} has a corrupt 'meta' entry "
                    f"(not valid JSON): {exc}",
                    path=path,
                    missing_key="meta",
                ) from exc
        for key in ("config", "iterations", "history", "breakdown", "n_ranks", "converged"):
            if key not in meta:
                raise ModelLoadError(
                    f"model file {path} metadata is missing required key {key!r}; "
                    "was it saved by an incompatible version?",
                    path=path,
                    missing_key=key,
                )
        config_dict = dict(meta["config"])
        grid = config_dict.get("grid")
        config_dict["grid"] = tuple(grid) if grid else None
        if cls is NMFResult and meta.get("variant"):
            from repro.core.variants import get_variant

            try:
                cls = get_variant(meta["variant"]).result_class
            except KeyError:
                pass  # saved by an unregistered variant: keep the base class
        base_fields = {f.name for f in dataclasses.fields(NMFResult)}
        extra = {
            f.name: meta[f.name]
            for f in dataclasses.fields(cls)
            if f.name not in base_fields and f.name in meta
        }
        plan_dict = meta.get("plan")
        plan = None
        if plan_dict:
            from repro.plan.planner import ExecutionPlan

            plan = ExecutionPlan.from_dict(plan_dict)
        grid_shape = meta.get("grid_shape")
        return cls(
            W=W,
            H=H,
            config=NMFConfig(**config_dict),
            iterations=meta["iterations"],
            history=[IterationStats(**s) for s in meta["history"]],
            breakdown=TimeBreakdown.from_parts(**meta["breakdown"]),
            ledger_summary=meta.get("ledger_summary", {}),
            n_ranks=meta["n_ranks"],
            grid_shape=tuple(grid_shape) if grid_shape else None,
            converged=meta["converged"],
            variant=meta.get("variant", ""),
            backend=meta.get("backend"),
            solver=meta.get("solver", ""),
            plan=plan,
            **extra,
        )
