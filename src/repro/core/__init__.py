"""The paper's algorithms: sequential ANLS, Naive-Parallel-NMF and HPC-NMF.

* :mod:`repro.core.anls` — Algorithm 1, the sequential Alternating
  Nonnegative Least Squares framework (the correctness reference);
* :mod:`repro.core.naive` — Algorithm 2, the naive parallelization that
  all-gathers whole factor matrices every iteration;
* :mod:`repro.core.hpc_nmf` — Algorithm 3, HPC-NMF on a ``pr × pc`` processor
  grid (the 1D variant is the grid ``(p, 1)``);
* :mod:`repro.core.api` — the user-facing front door: :func:`repro.fit` and
  the :class:`repro.NMF` estimator (plus the deprecated ``nmf`` /
  ``parallel_nmf`` shims) used by the examples and benchmarks;
* :mod:`repro.core.variants` — the variant registry behind ``fit``; one
  registered descriptor per NMF flavor, with capability flags;
* :mod:`repro.core.observers` — the per-iteration observer protocol threaded
  through every variant's outer loop, plus the composable built-in observers
  (history capture, tolerance stop, wall-clock budget, checkpointing,
  progress printing).

Extensions beyond the paper's headline algorithms (motivated by its use cases
and future-work discussion):

* :mod:`repro.core.regularized` — ridge / L1-regularized NMF through the same
  normal-equations interface (communication pattern unchanged);
* :mod:`repro.core.symmetric` — symmetric NMF for graph clustering (the
  Webbase use case, the paper's reference [13]);
* :mod:`repro.core.streaming` — sliding-window incremental NMF for live video
  (the §6.1.1 streaming scenario).
"""

from repro.core.api import NMF, fit, nmf, parallel_nmf
from repro.core.anls import anls_nmf
from repro.core.config import NMFConfig
from repro.core.observers import (
    CallbackObserver,
    CheckpointEvery,
    HistoryRecorder,
    IterationEvent,
    IterationObserver,
    ProgressPrinter,
    ToleranceStop,
    WallClockBudget,
)
from repro.core.result import NMFResult, IterationStats
from repro.core.objective import (
    frobenius_error,
    relative_error,
    objective_from_grams,
)
from repro.core.regularized import Regularization, regularized_nmf
from repro.core.symmetric import SymNMFResult, symmetric_nmf
from repro.core.streaming import StreamingNMF
from repro.core.variants import (
    Variant,
    available_variants,
    get_variant,
    register_variant,
)

__all__ = [
    "fit",
    "NMF",
    "nmf",
    "parallel_nmf",
    "anls_nmf",
    "NMFConfig",
    "NMFResult",
    "IterationStats",
    "IterationObserver",
    "IterationEvent",
    "HistoryRecorder",
    "ToleranceStop",
    "WallClockBudget",
    "CheckpointEvery",
    "ProgressPrinter",
    "CallbackObserver",
    "Variant",
    "available_variants",
    "get_variant",
    "register_variant",
    "frobenius_error",
    "relative_error",
    "objective_from_grams",
    "Regularization",
    "regularized_nmf",
    "SymNMFResult",
    "symmetric_nmf",
    "StreamingNMF",
]
