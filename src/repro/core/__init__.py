"""The paper's algorithms: sequential ANLS, Naive-Parallel-NMF and HPC-NMF.

* :mod:`repro.core.anls` — Algorithm 1, the sequential Alternating
  Nonnegative Least Squares framework (the correctness reference);
* :mod:`repro.core.naive` — Algorithm 2, the naive parallelization that
  all-gathers whole factor matrices every iteration;
* :mod:`repro.core.hpc_nmf` — Algorithm 3, HPC-NMF on a ``pr × pc`` processor
  grid (the 1D variant is the grid ``(p, 1)``);
* :mod:`repro.core.api` — the user-facing ``nmf`` / ``parallel_nmf`` entry
  points used by the examples and benchmarks.

Extensions beyond the paper's headline algorithms (motivated by its use cases
and future-work discussion):

* :mod:`repro.core.regularized` — ridge / L1-regularized NMF through the same
  normal-equations interface (communication pattern unchanged);
* :mod:`repro.core.symmetric` — symmetric NMF for graph clustering (the
  Webbase use case, the paper's reference [13]);
* :mod:`repro.core.streaming` — sliding-window incremental NMF for live video
  (the §6.1.1 streaming scenario).
"""

from repro.core.api import nmf, parallel_nmf
from repro.core.anls import anls_nmf
from repro.core.config import NMFConfig
from repro.core.result import NMFResult, IterationStats
from repro.core.objective import (
    frobenius_error,
    relative_error,
    objective_from_grams,
)
from repro.core.regularized import Regularization, regularized_nmf
from repro.core.symmetric import SymNMFResult, symmetric_nmf
from repro.core.streaming import StreamingNMF

__all__ = [
    "nmf",
    "parallel_nmf",
    "anls_nmf",
    "NMFConfig",
    "NMFResult",
    "IterationStats",
    "frobenius_error",
    "relative_error",
    "objective_from_grams",
    "Regularization",
    "regularized_nmf",
    "SymNMFResult",
    "symmetric_nmf",
    "StreamingNMF",
]
