"""Factor initialization (paper §6.1.3).

The paper initialises ``H`` with a uniform random nonnegative matrix from a
fixed seed, reusing the same seed across the algorithms being compared so all
variants perform identical computations, and notes that ``W`` need not be
initialised at all (the first half-iteration solves for ``W`` given ``H``).

Two construction paths are provided:

* :func:`init_h_global` — every caller generates the *same* full ``k × n``
  matrix from the seed and (in the parallel algorithms) slices out the columns
  it owns.  This makes sequential and parallel runs bitwise-comparable and is
  what the comparison tests rely on.
* :func:`init_h_local` — each rank generates only its own columns using a
  per-rank seed (the scalable path, analogous to how the paper's synthetic
  data is generated in place).  Different ranks produce statistically
  independent columns; the result no longer matches the sequential reference
  bit-for-bit, so this path is used when n is too large to materialise H.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.util.seeding import per_rank_seed, spawn_rng


def init_h_global(k: int, n: int, seed: int) -> np.ndarray:
    """The full ``k × n`` uniform-random initial ``H`` for a given seed."""
    rng = np.random.default_rng(int(seed))
    return rng.random((k, n))


def init_h_slice(k: int, n: int, seed: int, col_range: Tuple[int, int]) -> np.ndarray:
    """The columns ``[col_range)`` of :func:`init_h_global`'s matrix.

    Every rank calls this with the same ``seed`` and its own column range, so
    the union over ranks reproduces the sequential initial ``H`` exactly.  The
    full matrix is generated and sliced — acceptable because ``H`` is only
    ``k × n`` with ``k ≤ 50`` (it is the *data* matrix that must never be
    replicated).
    """
    lo, hi = col_range
    return np.ascontiguousarray(init_h_global(k, n, seed)[:, lo:hi])


def init_h_local(k: int, n_local: int, seed: int, rank: int) -> np.ndarray:
    """A rank-local random nonnegative ``k × n_local`` block from a per-rank seed."""
    rng = spawn_rng(seed, rank)
    return rng.random((k, n_local))


def init_w_global(m: int, k: int, seed: int) -> np.ndarray:
    """A full ``m × k`` random nonnegative ``W`` (only needed by MU/HALS warm starts)."""
    rng = np.random.default_rng(per_rank_seed(seed, 1))
    return rng.random((m, k))
